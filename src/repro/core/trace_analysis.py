"""Offline analysis of trace-lab event streams (``repro trace``).

The recording side (:mod:`repro.core.trace`) writes what the engine did;
this module answers what it *meant*: where the solver work went, how the
learned-clause quality (LBD) evolved, how the restart cadence behaved and
which scenarios dominated the run.  Every analysis consumes a parsed event
list (:func:`repro.core.trace.load_trace`), returns a JSON-serialisable
dict (the ``--json`` payload) and has a ``format_*`` companion rendering
the human table.

The :func:`analyze_summary` reconciliation is the trace lab's core
integrity check: per session group, the per-scenario ``scenario_end``
solver deltas must sum exactly to the group's ``session_summary``
aggregate counters -- the event stream and the solver's own bookkeeping
describe the same run or the trace is lying.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.core.trace import TIMING_FIELDS  # noqa: F401  (re-export context)

#: Stat counters treated as "solver work" when ranking scenarios.
WORK_KEYS = ("propagations", "decisions", "conflicts")


def _work_of(stats: Dict[str, int]) -> int:
    """The scalar work metric of a stats(-delta) dict."""
    return sum(int(stats.get(key, 0)) for key in WORK_KEYS)


# ---------------------------------------------------------------------------
# summary
# ---------------------------------------------------------------------------

def analyze_summary(events: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Whole-run breakdown: totals, per-group reconciliation, work shares.

    ``reconciled`` is True iff, for every session group, the sum of the
    per-scenario ``scenario_end.solver`` deltas equals the group's
    ``session_summary.stats`` on **every** counter the summary reports.
    """
    event_counts: Dict[str, int] = {}
    group_scenario_sums: Dict[str, Dict[str, int]] = {}
    group_scenarios: Dict[str, int] = {}
    group_stats: Dict[str, Dict[str, int]] = {}
    scenarios: List[Dict[str, object]] = []
    store: Dict[str, int] = {"lookups": 0, "hits": 0, "misses": 0,
                             "writes": 0, "writes_skipped": 0,
                             "cached_groups": 0, "cached_scenarios": 0}
    saw_store_events = False
    label = ""
    for event in events:
        ev = str(event.get("ev"))
        event_counts[ev] = event_counts.get(ev, 0) + 1
        if ev == "trace_begin":
            label = str(event.get("label", ""))
        elif ev == "store_lookup":
            saw_store_events = True
            store["lookups"] += 1
            store["hits" if event.get("hit") else "misses"] += 1
        elif ev == "store_write":
            saw_store_events = True
            store["writes" if event.get("written")
                  else "writes_skipped"] += 1
        elif ev == "scenario_end":
            group = str(event.get("group"))
            solver = dict(event.get("solver") or {})
            sums = group_scenario_sums.setdefault(group, {})
            for key, value in solver.items():
                sums[key] = sums.get(key, 0) + int(value)
            group_scenarios[group] = group_scenarios.get(group, 0) + 1
            if event.get("cached"):
                store["cached_scenarios"] += 1
            scenarios.append({
                "scenario": event.get("scenario"),
                "group": group,
                "deadlock_free": event.get("deadlock_free"),
                "status": event.get("status", "ok"),
                "work": _work_of(solver),
                "solver": solver,
                "wall_time_s": event.get("wall_time_s"),
            })
        elif ev == "session_summary":
            group_stats[str(event.get("group"))] = dict(
                event.get("stats") or {})
            if event.get("cached"):
                store["cached_groups"] += 1

    groups: List[Dict[str, object]] = []
    totals: Dict[str, int] = {}
    reconciled = True
    for group in sorted(set(group_stats) | set(group_scenario_sums)):
        stats = group_stats.get(group, {})
        sums = group_scenario_sums.get(group, {})
        mismatched = sorted(
            key for key in stats
            if int(stats.get(key, 0)) != int(sums.get(key, 0)))
        if mismatched or not stats:
            reconciled = False
        for key, value in stats.items():
            totals[key] = totals.get(key, 0) + int(value)
        groups.append({
            "group": group,
            "scenarios": group_scenarios.get(group, 0),
            "stats": stats,
            "scenario_delta_sum": sums,
            "reconciled": not mismatched and bool(stats),
            "mismatched_keys": mismatched,
        })

    total_work = _work_of(totals)
    for scenario in scenarios:
        scenario["share"] = (scenario["work"] / total_work
                             if total_work else 0.0)
    work_share = {key: (int(totals.get(key, 0)) / total_work
                        if total_work else 0.0)
                  for key in WORK_KEYS}
    summary: Dict[str, object] = {
        "label": label,
        "events": len(events),
        "event_counts": dict(sorted(event_counts.items())),
        "groups": groups,
        "totals": totals,
        "work_share": work_share,
        "scenarios": sorted(scenarios, key=lambda s: -int(s["work"])),
        "reconciled": reconciled,
    }
    if saw_store_events or store["cached_groups"]:
        # Verdict-store activity (warm-cache runs): replayed groups keep
        # their spans (with ``cached: true``), so the reconciliation above
        # covers cached runs too; this block adds the hit/miss accounting.
        summary["store"] = store
    return summary


def format_summary(summary: Dict[str, object]) -> str:
    from repro.reporting.tables import format_table, verdict_cell

    lines: List[str] = []
    label = summary.get("label") or "(unlabelled)"
    lines.append(f"trace: {summary['events']} events, label {label}")
    counts = summary["event_counts"]
    lines.append("  " + ", ".join(f"{ev}={count}"
                                  for ev, count in counts.items()))
    totals = summary["totals"]
    share = summary["work_share"]
    if totals:
        lines.append(
            f"solver totals: {totals.get('solves', 0)} solves, "
            f"{totals.get('conflicts', 0)} conflicts, "
            f"{totals.get('propagations', 0)} propagations, "
            f"{totals.get('decisions', 0)} decisions, "
            f"{totals.get('learned', 0)} learned, "
            f"{totals.get('restarts', 0)} restarts")
        lines.append("work share: " + ", ".join(
            f"{key} {share[key] * 100:.1f}%" for key in WORK_KEYS))
    store = summary.get("store")
    if store:
        lines.append(
            f"verdict store: {store['hits']} hits / "
            f"{store['misses']} misses ({store['lookups']} lookups), "
            f"{store['writes']} writes"
            + (f" ({store['writes_skipped']} skipped)"
               if store.get("writes_skipped") else "")
            + f", {store['cached_groups']} groups / "
              f"{store['cached_scenarios']} scenarios replayed from cache")
    rows = [[group["group"], group["scenarios"],
             group["stats"].get("solves", 0),
             group["stats"].get("conflicts", 0),
             group["stats"].get("propagations", 0),
             "yes" if group["reconciled"] else
             f"NO ({', '.join(group['mismatched_keys']) or 'no summary'})"]
            for group in summary["groups"]]
    if rows:
        lines.append(format_table(
            ["group", "scenarios", "solves", "conflicts", "propagations",
             "reconciled"], rows, title="session groups"))
    scenario_rows = [[s["scenario"], s["group"], s["work"],
                      f"{s['share'] * 100:.1f}",
                      verdict_cell(s.get("status"), s["deadlock_free"])]
                     for s in summary["scenarios"]]
    if scenario_rows:
        lines.append(format_table(
            ["scenario", "group", "work", "share %", "verdict"],
            scenario_rows, title="per-scenario solver share"))
    lines.append("reconciliation: " +
                 ("OK (scenario deltas sum to session aggregates)"
                  if summary["reconciled"] else "MISMATCH"))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# lbd
# ---------------------------------------------------------------------------

def analyze_lbd(events: Sequence[Dict[str, object]],
                buckets: int = 6) -> Dict[str, object]:
    """LBD histogram over time: one row per ``solver_phase`` sample.

    Each ``solver_phase`` record carries the solver's cumulative LBD
    histogram; rows report the per-window *delta* (clauses learned in that
    window per bucket, the last bucket folding everything ``>= buckets``).
    A sample whose histogram does not dominate its predecessor starts a
    fresh solver (new session group), so its delta is the snapshot itself.
    """
    buckets = max(1, int(buckets))
    rows: List[Dict[str, object]] = []
    previous: Dict[int, int] = {}
    for event in events:
        if event.get("ev") != "solver_phase":
            continue
        snapshot = {int(bucket): int(count)
                    for bucket, count in (event.get("lbd") or {}).items()}
        fresh = any(snapshot.get(bucket, 0) < count
                    for bucket, count in previous.items())
        base = {} if fresh else previous
        delta: Dict[int, int] = {}
        for bucket, count in snapshot.items():
            window = count - base.get(bucket, 0)
            slot = min(bucket, buckets)
            delta[slot] = delta.get(slot, 0) + window
        rows.append({
            "eid": event.get("eid"),
            "conflicts": event.get("conflicts"),
            "learned": sum(delta.values()),
            "buckets": {str(slot): delta.get(slot, 0)
                        for slot in range(1, buckets + 1)},
        })
        previous = snapshot
    return {"samples": len(rows), "bucket_cap": buckets, "rows": rows}


def format_lbd(lbd: Dict[str, object]) -> str:
    from repro.reporting.tables import format_table

    buckets = int(lbd["bucket_cap"])
    headers = (["eid", "conflicts", "learned"]
               + [f"lbd{'>=' if b == buckets else '='}{b}"
                  for b in range(1, buckets + 1)])
    rows = [[row["eid"], row["conflicts"], row["learned"]]
            + [row["buckets"][str(b)] for b in range(1, buckets + 1)]
            for row in lbd["rows"]]
    if not rows:
        return ("no solver_phase samples in this trace "
                "(run was below the phase-sampling interval)")
    return format_table(headers, rows,
                        title=f"LBD histogram over time "
                              f"({lbd['samples']} samples)")


# ---------------------------------------------------------------------------
# restarts
# ---------------------------------------------------------------------------

def analyze_restarts(events: Sequence[Dict[str, object]]
                     ) -> Dict[str, object]:
    """Restart cadence: one row per ``restart`` event plus summary stats.

    Rows carry the emitting ``policy`` (``luby``/``ema``; older traces
    without the field count as ``luby``) and, for EMA restarts, the
    ``fast``/``slow`` LBD averages at the restart point.
    """
    rows = [{"eid": event.get("eid"),
             "conflicts": event.get("conflicts"),
             "interval": int(event.get("interval", 0)),
             "limit": event.get("limit"),
             "policy": event.get("policy", "luby"),
             "fast": event.get("fast"),
             "slow": event.get("slow")}
            for event in events if event.get("ev") == "restart"]
    intervals = [row["interval"] for row in rows]
    policies = sorted({row["policy"] for row in rows})
    return {
        "restarts": len(rows),
        "rows": rows,
        "policies": policies,
        "mean_interval": (sum(intervals) / len(intervals)
                          if intervals else 0.0),
        "min_interval": min(intervals) if intervals else 0,
        "max_interval": max(intervals) if intervals else 0,
    }


def format_restarts(restarts: Dict[str, object]) -> str:
    from repro.reporting.tables import format_table

    if not restarts["rows"]:
        return "no restarts in this trace"
    with_ema = any(row["policy"] == "ema" for row in restarts["rows"])
    headers = ["eid", "conflicts", "interval", "limit", "policy"]
    if with_ema:
        headers += ["fast", "slow"]
    table_rows = []
    for row in restarts["rows"]:
        cells = [row["eid"], row["conflicts"], row["interval"],
                 row["limit"], row["policy"]]
        if with_ema:
            cells += [row["fast"] if row["fast"] is not None else "-",
                      row["slow"] if row["slow"] is not None else "-"]
        table_rows.append(cells)
    table = format_table(
        headers, table_rows,
        title=f"restart cadence ({restarts['restarts']} restarts)")
    return (f"{table}\n"
            f"interval: mean {restarts['mean_interval']:.1f}, "
            f"min {restarts['min_interval']}, "
            f"max {restarts['max_interval']}")


# ---------------------------------------------------------------------------
# hot
# ---------------------------------------------------------------------------

def analyze_hot(events: Sequence[Dict[str, object]],
                top: int = 10) -> Dict[str, object]:
    """Top-K scenarios by solver work (propagations + decisions +
    conflicts of the scenario's stat delta)."""
    summary = analyze_summary(events)
    scenarios = summary["scenarios"]
    top = max(1, int(top))
    return {
        "top": top,
        "total_scenarios": len(scenarios),
        "total_work": _work_of(summary["totals"]),
        "rows": scenarios[:top],
    }


def format_hot(hot: Dict[str, object]) -> str:
    from repro.reporting.tables import format_table, verdict_cell

    if not hot["rows"]:
        return "no scenario spans in this trace"
    rows = [[s["scenario"], s["group"], s["work"],
             s["solver"].get("propagations", 0),
             s["solver"].get("conflicts", 0),
             f"{s['share'] * 100:.1f}",
             verdict_cell(s.get("status"), s["deadlock_free"])]
            for s in hot["rows"]]
    return format_table(
        ["scenario", "group", "work", "propagations", "conflicts",
         "share %", "verdict"], rows,
        title=f"top {len(rows)} of {hot['total_scenarios']} scenarios "
              f"by solver work (total {hot['total_work']})")
