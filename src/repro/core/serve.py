"""``repro serve``: a resilient verification service over the verdict store.

The portfolio driver is batch-shaped: one process, one sweep, exit.  This
module turns it into a long-lived front end many clients can hammer: a
job queue accepting schema-4 batch requests over a **line-JSON Unix
socket** (one JSON object per line, one reply line per request -- no
HTTP), executing each job as a ``repro batch`` subprocess wired to the
shared :mod:`verdict store <repro.core.store>` and a per-job checkpoint
journal.

The robustness contract reuses the PR-8 fault-tolerance primitives end to
end:

* **Per-job deadlines.**  A request's ``deadline`` is passed to the child
  as ``--deadline`` (the cooperative ``SolverTimeout`` path inside
  ``run_portfolio``); the server's watch loop additionally reaps a truly
  wedged child at ``deadline * 1.25 + grace`` -- the same two-layer
  scheme, and the same grace margin, as the portfolio's own pool watch.
* **Crash retry with backoff.**  A job is *done* iff its report JSON
  exists and parses -- exit codes are ambiguous (``repro batch`` exits 1
  on timeout/error verdicts too).  A crashed child is retried with the
  engine's deterministic exponential backoff (``retry_backoff *
  2**(n-1)``, capped) up to ``max_retries`` times; thanks to
  ``--checkpoint --resume``, a retry re-solves only what the crash lost.
* **SIGTERM graceful drain.**  On SIGTERM (or a ``shutdown`` request)
  the server stops accepting jobs, gives the in-flight child a grace
  window to finish, then interrupts it (SIGINT -- the batch SIGINT path
  leaves a complete, fsynced checkpoint journal).  The store needs no
  extra flush: every record write is already atomic-and-fsynced by the
  child.  The server journals its own state and exits 0.
* **Journal resume.**  ``serve-journal.jsonl`` (append-only, same
  torn-tail-tolerant JSONL discipline as the checkpoint journal) records
  every submit and completion; a restarted server re-queues the jobs
  that never finished, and their ``--resume`` checkpoints carry the work
  already done.

Protocol operations (request ``op`` field):

``ping``      liveness probe -> ``{"ok": true, "pong": ...}``
``submit``    enqueue ``{"op": "submit", "request": {"matrix": [...],
              "cross_check"?, "jobs"?, "timeout"?, "deadline"?}}``
              -> ``{"ok": true, "job": "job-000001"}``
``status``    queue depth, per-job states, aggregated store hit/miss
              counters and the store's quarantine count
``result``    the finished job's full report JSON (error if not done)
``wait``      block (bounded by ``timeout``) until a job leaves the queue
``shutdown``  begin the graceful drain; the reply is sent before exit
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Optional

from repro.core.store import scan_store

#: Serve journal record schema.
SERVE_SCHEMA = 1

#: Watch-loop multiplier/grace for reaping a wedged child past its
#: cooperative deadline -- mirrors the portfolio pool watch (1.25x + 0.2).
REAP_FACTOR = 1.25
REAP_GRACE = 0.2

#: Cap on the deterministic crash-retry backoff, matching the engine's.
RETRY_BACKOFF_CAP = 2.0

#: Job request fields accepted from submitters (everything else is
#: rejected, so a typo'd field never silently degrades a job).
REQUEST_FIELDS = frozenset(
    {"matrix", "cross_check", "jobs", "timeout", "deadline"})


def validate_request(request: Any) -> Optional[str]:
    """The reason a submit request is invalid, or ``None`` if it is fine."""
    if not isinstance(request, dict):
        return "request must be an object"
    unknown = sorted(set(request) - REQUEST_FIELDS)
    if unknown:
        return f"unknown request field(s): {', '.join(unknown)}"
    matrix = request.get("matrix")
    if (not isinstance(matrix, list) or not matrix
            or not all(isinstance(term, str) and term.strip()
                       for term in matrix)):
        return "request.matrix must be a non-empty list of matrix terms"
    for field, kind in (("cross_check", bool), ("jobs", int)):
        if field in request and not isinstance(request[field], kind):
            return f"request.{field} must be a {kind.__name__}"
    for field in ("timeout", "deadline"):
        if field in request and request[field] is not None \
                and not isinstance(request[field], (int, float)):
            return f"request.{field} must be a number"
    return None


class ServeJob:
    """One queued batch request and its lifecycle bookkeeping."""

    def __init__(self, job_id: str, request: Dict[str, Any],
                 job_dir: str) -> None:
        self.id = job_id
        self.request = request
        self.dir = job_dir
        self.status = "queued"  # queued|running|done|failed|interrupted
        self.attempts = 0
        self.error: Optional[str] = None

    @property
    def report_path(self) -> str:
        return os.path.join(self.dir, "report.json")

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.dir, "checkpoint.jsonl")

    @property
    def log_path(self) -> str:
        return os.path.join(self.dir, "job.log")

    def public_state(self) -> Dict[str, Any]:
        state = {"id": self.id, "status": self.status,
                 "attempts": self.attempts}
        if self.error:
            state["error"] = self.error
        return state


class ReproServer:
    """The job-queue server.  Construct, then :meth:`run` (blocking).

    ``store_dir`` is the shared verdict store every job reads and warms;
    ``socket_path`` the Unix socket to listen on; ``work_dir`` holds the
    serve journal and the per-job directories (checkpoints, reports,
    logs) -- restart with the same ``work_dir`` to resume.
    """

    def __init__(self, store_dir: str, socket_path: str, work_dir: str,
                 max_retries: int = 2, retry_backoff: float = 0.1,
                 default_deadline: Optional[float] = None,
                 drain_grace: float = 5.0,
                 poll_interval: float = 0.05) -> None:
        self.store_dir = store_dir
        self.socket_path = socket_path
        self.work_dir = work_dir
        self.max_retries = max(0, int(max_retries))
        self.retry_backoff = retry_backoff
        self.default_deadline = default_deadline
        self.drain_grace = drain_grace
        self.poll_interval = poll_interval
        self.jobs: Dict[str, ServeJob] = {}
        self._queue: List[str] = []
        self._running: Optional[str] = None
        self._next_id = 1
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._listener: Optional[socket.socket] = None
        self._journal_handle = None
        self._child: Optional[subprocess.Popen] = None
        os.makedirs(os.path.join(work_dir, "jobs"), exist_ok=True)

    # -- journal ---------------------------------------------------------

    @property
    def journal_path(self) -> str:
        return os.path.join(self.work_dir, "serve-journal.jsonl")

    def _journal(self, record: Dict[str, Any]) -> None:
        if self._journal_handle is None:
            self._journal_handle = open(self.journal_path, "a",
                                        encoding="utf-8")
        record = dict(record, schema=SERVE_SCHEMA)
        self._journal_handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._journal_handle.flush()
        os.fsync(self._journal_handle.fileno())

    def _load_journal(self) -> List[Dict[str, Any]]:
        records: List[Dict[str, Any]] = []
        if not os.path.exists(self.journal_path):
            return records
        with open(self.journal_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail from a crash mid-append
                if isinstance(record, dict) and \
                        record.get("schema") == SERVE_SCHEMA:
                    records.append(record)
        return records

    def recover(self) -> List[str]:
        """Rebuild job state from the journal; returns re-queued job ids.

        Jobs with a ``submit`` record but no terminal ``done`` record are
        re-queued: their per-job checkpoint journals survive the previous
        server, so ``--resume`` re-solves only what was actually lost.
        """
        terminal: Dict[str, Dict[str, Any]] = {}
        submits: List[Dict[str, Any]] = []
        for record in self._load_journal():
            if record.get("event") == "submit":
                submits.append(record)
            elif record.get("event") == "done":
                terminal[record.get("job")] = record
        requeued: List[str] = []
        with self._lock:
            for record in submits:
                job_id = record["job"]
                job = ServeJob(job_id, record["request"],
                               os.path.join(self.work_dir, "jobs", job_id))
                number = int(job_id.rsplit("-", 1)[-1])
                self._next_id = max(self._next_id, number + 1)
                self.jobs[job_id] = job
                outcome = terminal.get(job_id)
                if outcome is not None:
                    job.status = outcome.get("status", "done")
                    job.attempts = int(outcome.get("attempts", 0))
                    job.error = outcome.get("error")
                else:
                    os.makedirs(job.dir, exist_ok=True)
                    self._queue.append(job_id)
                    requeued.append(job_id)
            self._cond.notify_all()
        return requeued

    # -- submission ------------------------------------------------------

    def submit(self, request: Dict[str, Any]) -> ServeJob:
        reason = validate_request(request)
        if reason:
            raise ValueError(reason)
        with self._lock:
            if self._stop.is_set():
                raise RuntimeError("server is draining; not accepting jobs")
            job_id = f"job-{self._next_id:06d}"
            self._next_id += 1
            job = ServeJob(job_id, request,
                           os.path.join(self.work_dir, "jobs", job_id))
            os.makedirs(job.dir, exist_ok=True)
            self.jobs[job_id] = job
            self._queue.append(job_id)
            self._journal({"event": "submit", "job": job_id,
                           "request": request})
            self._cond.notify_all()
        return job

    # -- status ----------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        with self._lock:
            jobs = {job_id: job.public_state()
                    for job_id, job in self.jobs.items()}
            queue_depth = len(self._queue)
            running = self._running
            draining = self._stop.is_set()
        store_counters = {"hits": 0, "misses": 0, "writes": 0}
        for job in list(self.jobs.values()):
            if job.status != "done":
                continue
            try:
                with open(job.report_path, "r", encoding="utf-8") as handle:
                    block = json.load(handle).get("store") or {}
                for key in store_counters:
                    store_counters[key] += int(block.get(key, 0))
            except (OSError, ValueError):
                pass
        scan = scan_store(self.store_dir)
        return {
            "queue_depth": queue_depth,
            "running": running,
            "draining": draining,
            "jobs": jobs,
            "store": {
                "records": scan["records"],
                "quarantined": scan["quarantined"],
                "damaged": scan["damaged"],
                **store_counters,
            },
        }

    def wait_for(self, job_id: str,
                 timeout: Optional[float] = None) -> Optional[str]:
        """Block until ``job_id`` reaches a terminal state (or timeout).

        Returns the terminal status, or ``None`` on timeout/unknown job.
        """
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        with self._cond:
            while True:
                job = self.jobs.get(job_id)
                if job is None:
                    return None
                if job.status in ("done", "failed", "interrupted"):
                    return job.status
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._cond.wait(min(0.2, remaining)
                                if remaining is not None else 0.2)

    def result(self, job_id: str) -> Dict[str, Any]:
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        if job.status != "done":
            raise RuntimeError(f"job {job_id} is {job.status}, not done")
        with open(job.report_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    # -- execution -------------------------------------------------------

    def job_command(self, job: ServeJob) -> List[str]:
        """The child command for one attempt (overridable for tests)."""
        request = job.request
        command = [sys.executable, "-m", "repro", "batch",
                   "--matrix", *[str(term) for term in request["matrix"]],
                   "--store", self.store_dir,
                   "--checkpoint", job.checkpoint_path, "--resume",
                   "--json", job.report_path]
        if request.get("cross_check"):
            command.append("--cross-check")
        if request.get("jobs"):
            command += ["--jobs", str(int(request["jobs"]))]
        if request.get("timeout") is not None:
            command += ["--timeout", str(float(request["timeout"]))]
        deadline = self._job_deadline(job)
        if deadline is not None:
            command += ["--deadline", str(float(deadline))]
        return command

    def _job_deadline(self, job: ServeJob) -> Optional[float]:
        deadline = job.request.get("deadline")
        return deadline if deadline is not None else self.default_deadline

    def _finish(self, job: ServeJob, status: str,
                error: Optional[str] = None) -> None:
        with self._lock:
            job.status = status
            job.error = error
            self._running = None
            self._journal({"event": "done", "job": job.id, "status": status,
                           "attempts": job.attempts, "error": error})
            self._cond.notify_all()

    def _harvest(self, job: ServeJob) -> bool:
        """True iff the attempt produced a parseable report (job done)."""
        try:
            with open(job.report_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            return isinstance(payload, dict) and "schema" in payload
        except (OSError, ValueError):
            return False

    def _reap(self, process: subprocess.Popen, sig: int,
              grace: float) -> bool:
        """Signal the child and wait up to ``grace``; True if it exited."""
        try:
            process.send_signal(sig)
        except OSError:
            return True
        try:
            process.wait(timeout=grace)
            return True
        except subprocess.TimeoutExpired:
            return False

    def _execute(self, job: ServeJob) -> None:
        """Run one job to a terminal state (with crash retries)."""
        while True:
            job.attempts += 1
            with self._lock:
                job.status = "running"
                self._running = job.id
            deadline = self._job_deadline(job)
            reap_at = (time.monotonic() + deadline * REAP_FACTOR + REAP_GRACE
                       if deadline is not None else None)
            interrupted = False
            with open(job.log_path, "a", encoding="utf-8") as log:
                log.write(f"--- attempt {job.attempts}\n")
                log.flush()
                process = subprocess.Popen(
                    self.job_command(job), stdout=log,
                    stderr=subprocess.STDOUT)
                self._child = process
                try:
                    while process.poll() is None:
                        if self._stop.is_set():
                            # Graceful drain: a finishing child wins the
                            # grace window; a long one is interrupted and
                            # leaves its checkpoint for the next server.
                            if not self._reap(process, signal.SIGINT,
                                              self.drain_grace):
                                if not self._reap(process, signal.SIGTERM,
                                                  2.0):
                                    self._reap(process, signal.SIGKILL, 2.0)
                            interrupted = not self._harvest(job)
                            break
                        if reap_at is not None and \
                                time.monotonic() >= reap_at:
                            # The cooperative --deadline inside the child
                            # should have produced timeout verdicts; a
                            # child still alive past the reap margin is
                            # wedged -- kill it and count a crash.
                            if not self._reap(process, signal.SIGTERM, 2.0):
                                self._reap(process, signal.SIGKILL, 2.0)
                            break
                        time.sleep(self.poll_interval)
                    else:
                        process.wait()
                finally:
                    self._child = None
            if interrupted:
                self._finish(job, "interrupted",
                             "drained before completion; checkpoint kept")
                return
            if self._harvest(job):
                self._finish(job, "done")
                return
            if job.attempts > self.max_retries:
                self._finish(job, "failed",
                             f"no parseable report after {job.attempts} "
                             f"attempt(s); see {job.log_path}")
                return
            # Deterministic exponential backoff between attempts, same
            # shape as the engine's pool-rebuild backoff.
            if self.retry_backoff > 0:
                time.sleep(min(self.retry_backoff * 2 ** (job.attempts - 1),
                               RETRY_BACKOFF_CAP))

    # -- socket front end ------------------------------------------------

    def _handle_request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        op = payload.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pong": "repro-serve",
                        "schema": SERVE_SCHEMA}
            if op == "submit":
                job = self.submit(payload.get("request"))
                return {"ok": True, "job": job.id}
            if op == "status":
                return {"ok": True, **self.status()}
            if op == "result":
                return {"ok": True,
                        "report": self.result(payload.get("job"))}
            if op == "wait":
                status = self.wait_for(payload.get("job"),
                                       payload.get("timeout"))
                if status is None:
                    return {"ok": False, "error": "timeout or unknown job"}
                return {"ok": True, "status": status}
            if op == "shutdown":
                self.request_stop()
                return {"ok": True, "draining": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except (ValueError, KeyError, RuntimeError, OSError) as exc:
            return {"ok": False, "error": str(exc)}

    def _serve_connection(self, connection: socket.socket) -> None:
        try:
            with connection, connection.makefile("rw",
                                                 encoding="utf-8") as stream:
                for line in stream:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                    except ValueError:
                        response = {"ok": False, "error": "invalid JSON"}
                    else:
                        response = self._handle_request(payload)
                    stream.write(json.dumps(response) + "\n")
                    stream.flush()
        except OSError:
            pass  # client went away mid-reply; its problem, not ours

    def _listen(self) -> None:
        listener = self._listener
        while not self._stop.is_set():
            try:
                connection, _ = listener.accept()
            except OSError:
                return  # listener closed during drain
            thread = threading.Thread(
                target=self._serve_connection, args=(connection,),
                daemon=True)
            thread.start()

    def request_stop(self) -> None:
        """Begin the graceful drain (signal-handler and protocol safe)."""
        self._stop.set()
        with self._lock:
            self._cond.notify_all()

    # -- main loop -------------------------------------------------------

    def run(self) -> int:
        """Serve until drained; returns the process exit status (0)."""
        self.recover()
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)  # stale socket from a dead server
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self.socket_path)
        self._listener.listen(16)
        accept_thread = threading.Thread(target=self._listen, daemon=True)
        accept_thread.start()
        try:
            while True:
                with self._cond:
                    while not self._queue and not self._stop.is_set():
                        self._cond.wait(0.2)
                    if self._stop.is_set() and not self._queue:
                        break
                    job = self.jobs[self._queue.pop(0)]
                if self._stop.is_set():
                    # Draining: jobs still queued stay journaled as
                    # submitted-not-done and re-queue on restart.
                    with self._lock:
                        job.status = "queued"
                        self._queue.insert(0, job.id)
                    break
                self._execute(job)
        finally:
            self._stop.set()
            try:
                self._listener.close()
            finally:
                if os.path.exists(self.socket_path):
                    try:
                        os.unlink(self.socket_path)
                    except OSError:
                        pass
                if self._journal_handle is not None:
                    self._journal_handle.close()
                    self._journal_handle = None
        return 0


def serve_request(socket_path: str, payload: Dict[str, Any],
                  timeout: float = 30.0) -> Dict[str, Any]:
    """One request/reply round trip with a running server (client side)."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as client:
        client.settimeout(timeout)
        client.connect(socket_path)
        client.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        chunks: List[bytes] = []
        while True:
            chunk = client.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    raw = b"".join(chunks).decode("utf-8").strip()
    if not raw:
        raise ConnectionError("server closed the connection without a reply")
    return json.loads(raw.splitlines()[0])


def serve_main(store_dir: str, socket_path: str, work_dir: str,
               max_retries: int = 2, retry_backoff: float = 0.1,
               default_deadline: Optional[float] = None,
               drain_grace: float = 5.0) -> int:
    """CLI entry: run a server with SIGTERM/SIGINT mapped to the drain."""
    server = ReproServer(store_dir, socket_path, work_dir,
                         max_retries=max_retries,
                         retry_backoff=retry_backoff,
                         default_deadline=default_deadline,
                         drain_grace=drain_grace)

    def _drain(_signum, _frame):
        server.request_stop()

    previous_term = signal.signal(signal.SIGTERM, _drain)
    previous_int = signal.signal(signal.SIGINT, _drain)
    try:
        print(f"repro serve: store {store_dir}, socket {socket_path}, "
              f"work dir {work_dir}", flush=True)
        code = server.run()
        print("repro serve: drained, exiting", flush=True)
        return code
    finally:
        signal.signal(signal.SIGTERM, previous_term)
        signal.signal(signal.SIGINT, previous_int)
