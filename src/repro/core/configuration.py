"""Configurations ``σ = <T, ST, A>`` and per-travel progress records.

A configuration (paper Section III-B) couples

* ``T`` -- the travels still being sent across the network,
* ``ST`` -- the network state (port buffers), and
* ``A`` -- the travels that have arrived at their destination.

Because HERMES uses wormhole switching, a travel's message is spread over
several ports as a *worm* of flits.  :class:`TravelProgress` records where
each flit of a travel currently is along its route; together with the port
buffers of ``ST`` it fully determines the dynamic state.  The invariants
linking the two views are checked by :meth:`Configuration.check_consistency`
and exercised by the property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.state import NetworkState
from repro.core.travel import Travel, check_unique_ids
from repro.network.port import Port

#: Sentinel position of a flit that has not yet entered the network.
NOT_INJECTED = -1


@dataclass
class TravelProgress:
    """Dynamic progress of one travel's flits along its route.

    ``positions[i]`` is the index (into the travel's route) of the port
    currently holding flit ``i``; :data:`NOT_INJECTED` (-1) means the flit is
    still queued at the source IP core, and ``len(route)`` means the flit has
    been ejected at the destination.
    """

    travel: Travel
    positions: List[int]

    @classmethod
    def initial(cls, travel: Travel) -> "TravelProgress":
        if travel.route is None:
            raise ValueError(
                f"travel {travel.travel_id} needs a route before it can progress"
            )
        return cls(travel=travel,
                   positions=[NOT_INJECTED] * travel.num_flits)

    # -- derived views ----------------------------------------------------------
    @property
    def route(self) -> Tuple[Port, ...]:
        assert self.travel.route is not None
        return self.travel.route

    @property
    def ejected_position(self) -> int:
        return len(self.route)

    @property
    def header_position(self) -> int:
        """Route index of the header flit (flit 0)."""
        return self.positions[0]

    @property
    def header_port(self) -> Optional[Port]:
        """The port currently holding the header, or ``None``."""
        pos = self.header_position
        if pos == NOT_INJECTED or pos >= self.ejected_position:
            return None
        return self.route[pos]

    @property
    def is_started(self) -> bool:
        """At least one flit has entered the network."""
        return any(pos != NOT_INJECTED for pos in self.positions)

    @property
    def is_arrived(self) -> bool:
        """All flits have been ejected at the destination."""
        return all(pos == self.ejected_position for pos in self.positions)

    @property
    def flits_in_network(self) -> int:
        return sum(1 for pos in self.positions
                   if NOT_INJECTED < pos < self.ejected_position)

    @property
    def flits_ejected(self) -> int:
        return sum(1 for pos in self.positions if pos == self.ejected_position)

    @property
    def remaining_route_length(self) -> int:
        """``|t.r|`` of the paper: hops the *header* still has to make.

        The header at route index ``i`` still has to traverse
        ``len(route) - 1 - i`` hops plus the final ejection; before injection
        the full route remains.
        """
        pos = self.header_position
        if pos == self.ejected_position:
            return 0
        if pos == NOT_INJECTED:
            return len(self.route)
        return len(self.route) - pos

    def remaining_flit_hops(self) -> int:
        """Total remaining movements of all flits (injections + hops + ejections).

        This is the refined termination measure: every flit movement
        (entering the network, advancing one hop, or being ejected)
        decreases it by exactly one.
        """
        total = 0
        for pos in self.positions:
            if pos == self.ejected_position:
                continue
            if pos == NOT_INJECTED:
                total += len(self.route) + 1
            else:
                total += len(self.route) - pos
        return total

    def occupied_route_indices(self) -> List[int]:
        """Route indices currently holding at least one flit of this travel."""
        return sorted({pos for pos in self.positions
                       if NOT_INJECTED < pos < self.ejected_position})

    def check_flit_order(self) -> None:
        """Flits never overtake: positions are non-increasing from header to tail."""
        for earlier, later in zip(self.positions, self.positions[1:]):
            if later > earlier:
                raise AssertionError(
                    f"flit order violated for travel {self.travel.travel_id}: "
                    f"{self.positions}"
                )

    def copy(self) -> "TravelProgress":
        return TravelProgress(travel=self.travel, positions=list(self.positions))


class Configuration:
    """A GeNoC configuration ``σ = <T, ST, A>``."""

    def __init__(self, travels: Sequence[Travel], state: NetworkState,
                 arrived: Optional[Sequence[Travel]] = None,
                 progress: Optional[Dict[int, TravelProgress]] = None) -> None:
        check_unique_ids(list(travels) + list(arrived or []))
        self.travels: List[Travel] = list(travels)
        self.state = state
        self.arrived: List[Travel] = list(arrived or [])
        self.progress: Dict[int, TravelProgress] = dict(progress or {})

    # -- the paper's field names -------------------------------------------------
    @property
    def T(self) -> List[Travel]:  # noqa: N802 - paper notation
        return self.travels

    @property
    def ST(self) -> NetworkState:  # noqa: N802 - paper notation
        return self.state

    @property
    def A(self) -> List[Travel]:  # noqa: N802 - paper notation
        return self.arrived

    # -- queries --------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return len(self.travels)

    @property
    def arrived_count(self) -> int:
        return len(self.arrived)

    def travel_by_id(self, travel_id: int) -> Travel:
        for travel in self.travels:
            if travel.travel_id == travel_id:
                return travel
        for travel in self.arrived:
            if travel.travel_id == travel_id:
                return travel
        raise KeyError(f"no travel with id {travel_id}")

    def progress_of(self, travel_id: int) -> TravelProgress:
        return self.progress[travel_id]

    def all_routed(self) -> bool:
        return all(travel.has_route for travel in self.travels)

    def is_finished(self) -> bool:
        """True when there is nothing left to send (``σ.T = ∅``)."""
        return not self.travels

    # -- consistency ---------------------------------------------------------------
    def check_consistency(self) -> None:
        """Check the invariants linking ``T``, ``ST`` and the progress records.

        * every pending, routed travel has a progress record;
        * flit positions respect the worm order (no overtaking);
        * the flits recorded at position ``i`` of a travel are indeed buffered
          at ``route[i]`` in the network state, and vice versa.
        """
        expected: Dict[Port, Dict[int, int]] = {}
        for travel in self.travels:
            if not travel.has_route:
                continue
            if travel.travel_id not in self.progress:
                raise AssertionError(
                    f"travel {travel.travel_id} is routed but has no progress record"
                )
            record = self.progress[travel.travel_id]
            record.check_flit_order()
            for pos in record.positions:
                if NOT_INJECTED < pos < record.ejected_position:
                    port = record.route[pos]
                    expected.setdefault(port, {}).setdefault(travel.travel_id, 0)
                    expected[port][travel.travel_id] += 1
        for port, state in self.state.items():
            actual: Dict[int, int] = {}
            for flit in state.buffer:
                actual.setdefault(flit.travel_id, 0)
                actual[flit.travel_id] += 1
            if actual != expected.get(port, {}):
                raise AssertionError(
                    f"state/progress mismatch at {port}: "
                    f"buffered {actual}, progress says {expected.get(port, {})}"
                )
            if len(actual) > 1:
                raise AssertionError(
                    f"port {port} holds flits of more than one packet: {actual}"
                )

    def copy(self) -> "Configuration":
        return Configuration(
            travels=list(self.travels),
            state=self.state.copy(),
            arrived=list(self.arrived),
            progress={tid: record.copy()
                      for tid, record in self.progress.items()},
        )

    def __str__(self) -> str:
        return (f"Configuration(T={len(self.travels)}, "
                f"A={len(self.arrived)}, "
                f"flits in network={self.state.total_flits()})")


def initial_configuration(travels: Sequence[Travel],
                          state: NetworkState) -> Configuration:
    """The initial configuration: all travels pending, empty state, no arrivals."""
    return Configuration(travels=travels, state=state, arrived=[])
