"""Shared content fingerprints for checkpoints and the verdict store.

Two durable layers key their records on the same identities:

* the :mod:`checkpoint <repro.core.checkpoint>` journal, which replays
  completed groups of a *single interrupted run*, and
* the :mod:`verdict store <repro.core.store>`, which replays completed
  groups *across runs and clients*.

Both must agree on what "the same engine" and "the same scenario" mean,
or a fingerprint bump would invalidate one cache but not the other and
stale verdicts could leak through the surviving layer.  This module is
the single definition both import.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple


def engine_fingerprint() -> str:
    """The current engine source fingerprint (see ``repro.__init__``).

    A hash over every ``.py`` source in the package: any code change --
    solver, routing, spec normalization -- yields a new fingerprint, so
    verdicts computed by an older engine are recomputed, never replayed.
    """
    import repro

    return repro.__engine_fingerprint__


def scenario_fingerprint(scenario) -> str:
    """A content hash identifying one scenario independent of spelling.

    :class:`~repro.core.spec.ScenarioSpec` inputs hash their normalized
    canonical form; pre-built instances (which have no spec) fall back to
    their name, which is the only identity they carry.
    """
    canonical = getattr(scenario, "canonical_hash", None)
    if callable(canonical):
        return canonical()
    return "instance:" + getattr(scenario, "name", repr(scenario))


def make_run_key(seed: int, analyse_failures: bool, cross_check: bool,
                 shard: Optional[Tuple[int, int]]) -> Dict[str, Any]:
    """The run parameters a cached group must match to be replayable.

    Solver stat deltas and verdict details are functions of the whole
    run configuration, not just the spec, so both durable layers refuse
    to mix records across differently parameterised sweeps.
    """
    return {
        "seed": seed,
        "analyse_failures": bool(analyse_failures),
        "cross_check": bool(cross_check),
        "shard": list(shard) if shard is not None else None,
    }
