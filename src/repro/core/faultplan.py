"""Deterministic engine fault injection (test-only).

Recovery paths that are only exercised by real crashes are recovery paths
that rot.  A :class:`FaultPlan` lets the tests (and the CI ``fault-smoke``
lane) *schedule* worker failures deterministically: kill this group's
worker on its first attempt, hang that one, raise in a third -- so every
branch of the portfolio engine's fault tolerance (pool rebuild + retry,
watch-loop group timeouts, serial degradation, error verdicts) runs in CI
on every push, not just when the OOM killer happens to visit.

A plan is a mapping from session-group key to a directive::

    mesh-3x3=kill@1; ring-4=timeout

* ``kill``      -- the worker process exits hard (``os._exit``), as an
  OOM kill or segfault would.  Ignored outside a pool worker (the plan
  must never take down the orchestrating process, and the serial
  degradation path is *supposed* to succeed).
* ``hang[:seconds]`` -- the worker sleeps (default 3600 s), simulating a
  wedged solve; only a group/run deadline gets rid of it.  Ignored
  outside a pool worker, like ``kill``.
* ``raise``     -- a deterministic ``RuntimeError`` at group start; the
  group reports structured ``error`` verdicts (both serial and pooled).
* ``timeout``   -- a :class:`~repro.checking.sat.SolverTimeout` at group
  start, producing planned ``timeout`` verdicts without any wall-clock
  dependence.

``@n`` limits the directive to the group's first ``n`` attempts (default
1), so a killed group *succeeds on retry* -- the recovered run must then be
verdict-identical to a fault-free one.  ``@*`` means every attempt,
which drives the engine into serial degradation.

Plans enter the engine via the ``_fault_plan=`` keyword of
:func:`~repro.core.portfolio.run_portfolio` or the ``REPRO_FAULT_PLAN``
environment variable (which also reaches ``repro batch`` subprocesses in
CI).  Parsing is strict: a typo in a fault plan must fail the test, not
silently inject nothing.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Environment variable carrying a serialized fault plan.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Recognised directive actions.
FAULT_ACTIONS = ("kill", "hang", "raise", "timeout")

#: Exit status of a ``kill`` directive -- distinctive enough to recognise
#: in CI logs, meaningless enough not to collide with Python's own codes.
KILL_EXIT_CODE = 86

#: Sleep of a ``hang`` directive with no explicit duration (seconds).
DEFAULT_HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class FaultDirective:
    """One scheduled failure: what to do and on which attempts."""

    group: str
    action: str
    #: ``hang`` duration in seconds (0 selects the default).
    param: float = 0.0
    #: Inject on attempts 1..attempts; ``None`` means every attempt.
    attempts: Optional[int] = 1

    def applies(self, attempt: int) -> bool:
        """Does this directive fire on the given (1-based) attempt?"""
        return self.attempts is None or attempt <= self.attempts

    def to_text(self) -> str:
        text = f"{self.group}={self.action}"
        if self.action == "hang" and self.param:
            text += f":{self.param:g}"
        if self.attempts is None:
            text += "@*"
        elif self.attempts != 1:
            text += f"@{self.attempts}"
        return text


class FaultPlan:
    """A deterministic schedule of injected engine failures by group."""

    def __init__(self, directives: Dict[str, FaultDirective]) -> None:
        self._directives = dict(directives)

    def __bool__(self) -> bool:
        return bool(self._directives)

    def __eq__(self, other) -> bool:
        return (isinstance(other, FaultPlan)
                and self._directives == other._directives)

    def directive_for(self, group: str,
                      attempt: int) -> Optional[FaultDirective]:
        """The directive firing for ``group`` on this attempt, if any."""
        directive = self._directives.get(group)
        if directive is not None and directive.applies(attempt):
            return directive
        return None

    def to_text(self) -> str:
        """The plan in the parseable ``group=action[:p][@n]`` syntax."""
        return "; ".join(directive.to_text()
                         for directive in self._directives.values())

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse ``group=action[:param][@attempts]; ...`` (strict)."""
        directives: Dict[str, FaultDirective] = {}
        for raw in text.split(";"):
            term = raw.strip()
            if not term:
                continue
            if "=" not in term:
                raise ValueError(
                    f"fault-plan term {term!r} must look like "
                    f"group=action[:param][@attempts]")
            group, spec = (part.strip() for part in term.split("=", 1))
            attempts: Optional[int] = 1
            if "@" in spec:
                spec, attempts_text = (part.strip()
                                       for part in spec.split("@", 1))
                if attempts_text == "*":
                    attempts = None
                else:
                    try:
                        attempts = int(attempts_text)
                    except ValueError:
                        raise ValueError(
                            f"fault-plan attempts must be an integer or "
                            f"'*', got {attempts_text!r}")
                    if attempts < 1:
                        raise ValueError(
                            f"fault-plan attempts must be >= 1, "
                            f"got {attempts}")
            param = 0.0
            if ":" in spec:
                spec, param_text = (part.strip()
                                    for part in spec.split(":", 1))
                try:
                    param = float(param_text)
                except ValueError:
                    raise ValueError(f"fault-plan parameter must be a "
                                     f"number, got {param_text!r}")
            action = spec.strip()
            if action not in FAULT_ACTIONS:
                raise ValueError(f"unknown fault action {action!r}; "
                                 f"expected one of {FAULT_ACTIONS}")
            if not group:
                raise ValueError(f"fault-plan term {term!r} misses the "
                                 f"group key")
            if group in directives:
                raise ValueError(f"duplicate fault-plan group {group!r}")
            directives[group] = FaultDirective(group=group, action=action,
                                               param=param,
                                               attempts=attempts)
        return cls(directives)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan in :data:`FAULT_PLAN_ENV`, or ``None`` when unset."""
        text = os.environ.get(FAULT_PLAN_ENV, "").strip()
        if not text:
            return None
        return cls.parse(text)


def resolve_fault_plan(plan) -> Optional[FaultPlan]:
    """Normalise a ``_fault_plan=`` argument: plan, text, or env fallback."""
    if plan is None:
        return FaultPlan.from_env()
    if isinstance(plan, FaultPlan):
        return plan
    return FaultPlan.parse(str(plan))


def execute_directive(directive: Optional[Tuple[str, float]],
                      in_worker: bool) -> None:
    """Carry out a shipped ``(action, param)`` directive at group start.

    ``kill`` and ``hang`` only make sense inside a sacrificial pool
    worker; in the orchestrating process (serial runs, and the serial
    degradation path after repeated crashes) they are no-ops -- which is
    exactly what lets a ``kill@*`` plan prove that degradation works.
    ``raise`` and ``timeout`` raise in any process: their recovery story
    is structured verdicts, not process replacement.
    """
    if directive is None:
        return
    action, param = directive
    if action == "kill":
        if in_worker:
            os._exit(KILL_EXIT_CODE)
        return
    if action == "hang":
        if in_worker:
            time.sleep(param if param > 0 else DEFAULT_HANG_SECONDS)
        return
    if action == "raise":
        raise RuntimeError("injected fault: planned worker failure")
    if action == "timeout":
        from repro.checking.sat import SolverTimeout

        raise SolverTimeout("injected fault: planned group timeout")
    raise ValueError(f"unknown fault directive action {action!r}")
