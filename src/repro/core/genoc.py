"""The GeNoC interpreter.

Function ``GeNoC`` (paper Section III-B) recursively applies the composition
of the three constituents to an initial configuration:

* it stops when all messages have reached their destination (``σ.T = ∅``);
* it stops when the current configuration is in deadlock (``Ω(R(I(σ)))``);
* otherwise it applies one switching step and recurses.

This module implements that interpreter iteratively (Python recursion limits
are no place for a 10 000-step simulation), records the evolution of the
termination measure (needed for the empirical discharge of obligation (C-5))
and optionally keeps a trace of intermediate configurations for the
simulator and the visualisation examples.

The specialisation the paper calls ``GeNoC2D`` -- injection and route
computation hoisted out of the recursion because injection is immediate and
XY-routing is deterministic -- corresponds to calling :meth:`GeNoCEngine.run`
once: injection and routing are applied exactly once before the switching
loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.core.configuration import Configuration
from repro.core.constituents import (
    InjectionMethod,
    RoutingFunction,
    SwitchingPolicy,
)
from repro.core.deadlock import is_deadlock
from repro.core.errors import GeNoCError
from repro.core.measure import Measure, flit_hop_measure


@dataclass
class StepRecord:
    """One switching step of a GeNoC run."""

    step: int
    measure: int
    pending: int
    arrived: int
    flits_in_network: int


@dataclass
class GeNoCResult:
    """Outcome of a GeNoC run."""

    final: Configuration
    steps: int
    deadlocked: bool
    measures: List[int] = field(default_factory=list)
    history: List[StepRecord] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def evacuated(self) -> bool:
        """Did every message leave the network (``σ.T = ∅``)?"""
        return self.final.is_finished() and not self.deadlocked

    @property
    def arrived_ids(self) -> List[int]:
        return sorted(t.travel_id for t in self.final.arrived)

    def __str__(self) -> str:
        status = "deadlocked" if self.deadlocked else (
            "evacuated" if self.evacuated else "truncated")
        return (f"GeNoCResult({status} after {self.steps} steps, "
                f"{len(self.final.arrived)} arrived, "
                f"{len(self.final.travels)} pending)")


class GeNoCEngine:
    """The generic GeNoC interpreter, parameterised by its constituents."""

    def __init__(self, injection: InjectionMethod, routing: RoutingFunction,
                 switching: SwitchingPolicy,
                 measure: Optional[Measure] = None,
                 max_steps: Optional[int] = None) -> None:
        self.injection = injection
        self.routing = routing
        self.switching = switching
        self.measure: Measure = measure or flit_hop_measure
        self.max_steps = max_steps

    # -- the interpreter ---------------------------------------------------------
    def run(self, config: Configuration,
            on_step: Optional[Callable[[int, Configuration], None]] = None,
            check_invariants: bool = False) -> GeNoCResult:
        """Run GeNoC to completion (evacuation, deadlock or step bound).

        Parameters
        ----------
        config:
            The initial configuration ``σ``.
        on_step:
            Optional callback invoked after every switching step with the
            step number and the current configuration (used by the tracer).
        check_invariants:
            When true, the state/progress consistency invariants are checked
            after every step (slow; used by tests).
        """
        start = time.perf_counter()
        current = self.injection.inject(config)
        current = self.routing.route_configuration(current)
        if check_invariants:
            current.check_consistency()

        measures: List[int] = [self.measure(current)]
        history: List[StepRecord] = []
        steps = 0
        deadlocked = False

        while True:
            if current.is_finished():
                break
            if is_deadlock(current, self.switching):
                deadlocked = True
                break
            if self.max_steps is not None and steps >= self.max_steps:
                raise GeNoCError(
                    f"GeNoC did not terminate within {self.max_steps} steps; "
                    f"this indicates a violation of obligation (C-5)")
            current = self.switching.step(current)
            steps += 1
            if check_invariants:
                current.check_consistency()
            measures.append(self.measure(current))
            history.append(StepRecord(
                step=steps,
                measure=measures[-1],
                pending=len(current.travels),
                arrived=len(current.arrived),
                flits_in_network=current.state.total_flits(),
            ))
            if on_step is not None:
                on_step(steps, current)

        elapsed = time.perf_counter() - start
        return GeNoCResult(final=current, steps=steps, deadlocked=deadlocked,
                           measures=measures, history=history,
                           elapsed_seconds=elapsed)

    # -- convenience --------------------------------------------------------------
    def run_to_completion(self, config: Configuration) -> Configuration:
        """The paper's ``GeNoC(σ)``: the final configuration only."""
        return self.run(config).final

    def describe(self) -> dict:
        return {
            "injection": self.injection.name(),
            "routing": self.routing.name(),
            "switching": self.switching.name(),
            "measure": getattr(self.measure, "__name__", str(self.measure)),
        }
