"""Bundling an instantiation of GeNoC: the ``NoCInstance``.

The "user input" of the GeNoC methodology (paper Fig. 2) consists of concrete
definitions of the three constituents, a declared dependency graph, a (C-2)
witness function and a termination measure.  :class:`NoCInstance` bundles
them with the topology so that the obligation engine, the theorem checkers,
the verification pipeline, the simulator and the benchmarks can all be
driven from one object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.configuration import Configuration, initial_configuration
from repro.core.constituents import (
    InjectionMethod,
    RoutingFunction,
    SwitchingPolicy,
)
from repro.core.dependency import DependencyGraphSpec
from repro.core.genoc import GeNoCEngine, GeNoCResult
from repro.core.measure import Measure, flit_hop_measure, route_length_measure
from repro.core.state import NetworkState
from repro.core.travel import Travel, make_travel
from repro.core.witness import WitnessDestination
from repro.network.port import Port
from repro.network.topology import Topology


@dataclass
class NoCInstance:
    """A complete instantiation of the GeNoC framework."""

    name: str
    topology: Topology
    injection: InjectionMethod
    routing: RoutingFunction
    switching: SwitchingPolicy
    dependency_spec: Optional[DependencyGraphSpec] = None
    witness_destination: Optional[WitnessDestination] = None
    #: The measure used for the (C-5) discharge; defaults to the flit-hop
    #: measure which is strictly decreasing for all shipped policies.
    measure: Measure = flit_hop_measure
    #: The paper's coarser measure, reported alongside for comparison.
    paper_measure: Measure = route_length_measure
    default_capacity: int = 2
    capacities: Optional[Dict[Port, int]] = None

    # -- engines and configurations ----------------------------------------------
    def engine(self, max_steps: Optional[int] = None) -> GeNoCEngine:
        return GeNoCEngine(injection=self.injection, routing=self.routing,
                           switching=self.switching, measure=self.measure,
                           max_steps=max_steps)

    def empty_state(self, capacity: Optional[int] = None) -> NetworkState:
        return NetworkState.empty(
            self.topology,
            capacity=capacity if capacity is not None else self.default_capacity,
            capacities=self.capacities)

    def initial_configuration(self, travels: Sequence[Travel],
                              capacity: Optional[int] = None) -> Configuration:
        return initial_configuration(list(travels), self.empty_state(capacity))

    def make_travel(self, source_node, destination_node,
                    num_flits: int = 1) -> Travel:
        """Create a travel between two nodes, using local in/out ports.

        ``source_node`` and ``destination_node`` are ``(x, y)`` coordinate
        pairs.
        """
        source = self.topology.node_at(*source_node).local_in
        destination = self.topology.node_at(*destination_node).local_out
        return make_travel(source, destination, num_flits=num_flits)

    def run(self, travels: Sequence[Travel],
            capacity: Optional[int] = None,
            max_steps: Optional[int] = None,
            check_invariants: bool = False) -> GeNoCResult:
        """Run GeNoC on an initial message list and return the result."""
        config = self.initial_configuration(travels, capacity)
        return self.engine(max_steps=max_steps).run(
            config, check_invariants=check_invariants)

    # -- introspection --------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        description: Dict[str, object] = {
            "name": self.name,
            "topology": str(self.topology),
            "injection": self.injection.name(),
            "routing": self.routing.name(),
            "switching": self.switching.name(),
            "default_capacity": self.default_capacity,
        }
        description.update(self.topology.describe())
        return description
