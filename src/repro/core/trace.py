"""Structured solver/engine telemetry: the trace lab's recording side.

The engine's only runtime visibility used to be end-of-run aggregate
counters (``SatSolver.stats``) and wall times (``BENCH_*.json``).  This
module records what the search *did* while it did it: an opt-in, buffered
JSONL event stream threaded through the CDCL solver, the incremental
session/oracle layer and the portfolio driver, cheap enough to leave wired
in (a ``None`` trace costs one pointer test on the cold paths and nothing
on the propagation loop) and structured enough to analyse offline
(:mod:`repro.core.trace_analysis`, ``repro trace``).

Design rules:

* **Opt-in and inert by default.**  Every producer takes ``trace=None``;
  with ``None`` no event objects are allocated and verdicts are
  byte-identical to an untraced run (pinned by the acceptance tests).
* **Deterministic modulo timing.**  Event payloads are pure functions of
  the (deterministic) engine state; wall-clock readings are confined to
  the :data:`TIMING_FIELDS` (``t``, ``wall_time_s``).  The clock itself is
  injected, so tests replace it with a counter and assert two traced runs
  produce *identical* streams.
* **Schema-versioned, monotonic.**  Every stream starts with a
  ``trace_begin`` event carrying :data:`TRACE_SCHEMA`; every event has a
  monotonically increasing ``eid``.  :func:`validate_trace` is the gate
  the CI trace-smoke lane fails on.

Event taxonomy (``ev`` field):

=================  ==========================================================
``trace_begin``    stream header: ``schema``, free-form ``label``
``solve_begin``    one CDCL query: ``solve`` number, ``assumptions`` count,
                   ``prefix_reuse`` (assumption-prefix trail levels kept)
``solve_end``      query outcome: ``sat`` plus ``delta`` (stat counters
                   spent by this solve)
``solver_phase``   sampled every ``phase_interval`` conflicts: cumulative
                   ``conflicts``, per-window ``delta``, ``trail`` depth,
                   ``lbd`` histogram snapshot
``restart``        discrete restart: cumulative ``conflicts``,
                   ``interval`` since the previous restart, the ``limit``
                   the interval exceeded (Luby budget or EMA floor); the
                   optional ``policy`` (``luby``/``ema``) and, for EMA
                   restarts, the ``fast``/``slow`` LBD averages
``reduce_db``      learned-clause deletion: ``deleted``/``retained``
                   counts, ``lbd_cutoff`` (smallest deleted LBD)
``vivify``         one vivification pass: ``checked`` candidates,
                   ``shortened`` clauses, ``removed`` literals
``inprocess``      one inprocessing pass: ``subsumed``/``strengthened``
                   clause counts, ``eliminated`` variables, live
                   ``clauses`` after the rebuild
``arena_gc``       arena compaction: ``reclaimed`` ints, ``live`` ints
``edge_batch``     oracle universe growth since the last query: ``edges``
                   added, new ``total``
``oracle_query``   one acyclicity query: ``query`` index, ``edges``
                   assumed, ``sat``
``scenario_begin`` portfolio span open: ``scenario``, ``group``, ``index``,
                   ``shard``
``scenario_end``   portfolio span close: verdict, ``edges``/``new_edges``,
                   per-scenario ``solver`` stat deltas, ``cache`` deltas,
                   ``wall_time_s``
``session_summary`` end-of-group aggregate solver ``stats`` (the
                   reconciliation anchor: per-scenario deltas must sum to
                   these counters)
``portfolio_begin``/``portfolio_end``  run-level span: scenario counts,
                   ``shard``, verdict summary
``group_timeout``  a scenario group hit its deadline: ``group``, ``reason``
                   (its unfinished scenarios became ``timeout`` verdicts)
``group_error``    a scenario group failed for good: ``group``, ``reason``
``group_retry``    a crashed group was resubmitted: ``group``, ``attempt``,
                   ``reason`` (parallel runs only; reserved -- traced runs
                   are serial)
``checkpoint``     journal activity: ``action`` (``record``/``replay``),
                   ``group``
``store_lookup``   verdict-store probe for one group: ``group``, the content
                   ``key``, ``hit``
``store_write``    verdict-store persist attempt: ``group``, ``written``
                   (``false``: skipped -- read-only/degraded store or a
                   writer-lock timeout)
=================  ==========================================================

A store-replayed group still opens its ``scenario_begin``/``scenario_end``
spans and closes with ``session_summary`` -- the solver deltas and stats
come from the stored record and the events carry ``cached: true`` -- so
the per-group reconciliation contract holds on warm-cache runs too.

A ``scenario_end`` closing a cut-off scenario carries the optional
``status`` field (``"timeout"``/``"error"``) with ``deadlock_free: null``
and its *partial* solver delta -- so the per-group reconciliation of
:func:`repro.core.trace_analysis.analyze_summary` keeps holding on
truncated runs.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, Iterable, Iterator, List, Optional

#: Version of the event-stream shape.  Bump when events are renamed,
#: removed, or their required fields change; additive optional fields do
#: not need a bump.
TRACE_SCHEMA = 1

#: Fields that legitimately differ between two runs of the same workload
#: (wall-clock readings).  Everything else must be deterministic --
#: :func:`scrub_timing` strips these for the determinism tests.
TIMING_FIELDS = frozenset({"t", "wall_time_s"})

#: Fields that depend on process history rather than the workload: the
#: construction-cache counters of a ``scenario_end`` hit where a previous
#: run in the same process already built the instance.  The same
#: legitimate-difference class as :data:`TIMING_FIELDS` (and stripped with
#: them), matching what
#: :meth:`~repro.core.portfolio.PortfolioReport.comparable_dict` strips
#: from verdict reports.
ENVIRONMENT_FIELDS = frozenset({"cache"})

#: Known event types and the fields each is required to carry (beyond the
#: envelope ``eid``/``ev``/``t``).  Used by :func:`validate_trace`.
EVENT_FIELDS: Dict[str, tuple] = {
    "trace_begin": ("schema",),
    "solve_begin": ("solve", "assumptions", "prefix_reuse"),
    "solve_end": ("sat", "delta"),
    "solver_phase": ("conflicts", "delta", "trail", "lbd"),
    "restart": ("conflicts", "interval", "limit"),
    "reduce_db": ("deleted", "retained", "lbd_cutoff"),
    "vivify": ("checked", "shortened", "removed"),
    "inprocess": ("subsumed", "strengthened", "eliminated", "clauses"),
    "arena_gc": ("reclaimed", "live"),
    "edge_batch": ("edges", "total"),
    "oracle_query": ("query", "edges", "sat"),
    "scenario_begin": ("scenario", "group", "index", "shard"),
    "scenario_end": ("scenario", "group", "deadlock_free", "condition",
                     "edges", "new_edges", "solver", "cache", "wall_time_s"),
    "session_summary": ("group", "stats"),
    "portfolio_begin": ("scenarios", "shard"),
    "portfolio_end": ("scenarios", "deadlock_free", "deadlock_prone"),
    "group_timeout": ("group", "reason"),
    "group_error": ("group", "reason"),
    "group_retry": ("group", "attempt", "reason"),
    "checkpoint": ("action", "group"),
    "store_lookup": ("group", "key", "hit"),
    "store_write": ("group", "written"),
}

#: Default solver phase-sampling cadence (conflicts between
#: ``solver_phase`` records).
DEFAULT_PHASE_INTERVAL = 256


class TraceWriter:
    """Buffered JSONL trace sink with monotonic event ids.

    ``sink`` is a filesystem path (opened, owned and closed by the writer)
    or any object with a ``write(str)`` method (borrowed; only flushed).
    ``clock`` is the wall-clock source for the ``t`` envelope field --
    inject a deterministic counter to make whole streams reproducible::

        with TraceWriter("run.jsonl") as trace:
            run_portfolio(scenarios, trace=trace)

    Events are buffered (``buffer_limit`` events) and flushed on overflow,
    :meth:`flush` and :meth:`close`; the writer emits the schema-versioned
    ``trace_begin`` header on construction.
    """

    def __init__(self, sink, clock: Optional[Callable[[], float]] = None,
                 label: str = "",
                 phase_interval: int = DEFAULT_PHASE_INTERVAL,
                 buffer_limit: int = 512) -> None:
        if isinstance(sink, str):
            self._handle = open(sink, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = sink
            self._owns_handle = False
        self._clock = clock if clock is not None else time.perf_counter
        self._epoch = self._clock()
        #: Conflicts between consecutive ``solver_phase`` samples; read by
        #: the solver at the start of every ``solve``.
        self.phase_interval = max(1, int(phase_interval))
        self._buffer: List[str] = []
        self._buffer_limit = max(1, int(buffer_limit))
        self._eid = -1
        self._closed = False
        self.emit("trace_begin", schema=TRACE_SCHEMA, label=label)

    # -- recording ----------------------------------------------------------------
    @property
    def last_eid(self) -> int:
        """The id of the most recently emitted event."""
        return self._eid

    def emit(self, ev: str, **fields) -> int:
        """Record one event; returns its monotonic id."""
        if self._closed:
            raise ValueError("trace writer is closed")
        self._eid += 1
        record: Dict[str, object] = {
            "eid": self._eid,
            "ev": ev,
            "t": round(self._clock() - self._epoch, 6),
        }
        record.update(fields)
        self._buffer.append(json.dumps(record, separators=(",", ":")))
        if len(self._buffer) >= self._buffer_limit:
            self._write_out()
        return self._eid

    def _write_out(self) -> None:
        if self._buffer:
            self._handle.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()

    def flush(self) -> None:
        """Flush buffered events through to the underlying sink."""
        self._write_out()
        self._handle.flush()

    def close(self) -> None:
        """Flush and (for path sinks) close the underlying handle."""
        if self._closed:
            return
        self._write_out()
        if self._owns_handle:
            self._handle.close()
        else:
            self._handle.flush()
        self._closed = True

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Reading, scrubbing, validating
# ---------------------------------------------------------------------------

def iter_trace(source) -> Iterator[Dict[str, object]]:
    """Yield the events of a JSONL trace (path or iterable of lines)."""
    if isinstance(source, str):
        with open(source, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield json.loads(line)
        return
    for line in source:
        line = line.strip()
        if line:
            yield json.loads(line)


def load_trace(source) -> List[Dict[str, object]]:
    """The whole event list of a trace (see :func:`iter_trace`)."""
    return list(iter_trace(source))


def scrub_timing(event: Dict[str, object]) -> Dict[str, object]:
    """A copy of ``event`` with the :data:`TIMING_FIELDS` (wall-clock
    readings) and :data:`ENVIRONMENT_FIELDS` (process-history-dependent
    cache counters) removed.

    Two traced runs of the same deterministic workload must produce
    identical event lists after scrubbing -- the determinism contract the
    trace tests pin.
    """
    return {key: value for key, value in event.items()
            if key not in TIMING_FIELDS and key not in ENVIRONMENT_FIELDS}


def validate_trace(events: Iterable[Dict[str, object]]) -> List[str]:
    """Validate an event stream; returns the violations (empty = valid).

    Checks the envelope (monotonic ``eid`` from 0, numeric ``t``, known
    ``ev``), the schema-versioned ``trace_begin`` header, the per-type
    required fields of :data:`EVENT_FIELDS` and span pairing
    (``solve_begin``/``solve_end``, ``scenario_begin``/``scenario_end``,
    ``portfolio_begin``/``portfolio_end`` must balance).  This is the
    contract the CI trace-smoke lane enforces on shipped traces.
    """
    errors: List[str] = []
    expected_eid = 0
    open_solves = open_scenarios = open_portfolios = 0
    saw_header = False
    for event in events:
        eid = event.get("eid")
        ev = event.get("ev")
        where = f"event eid={eid!r}"
        if eid != expected_eid:
            errors.append(f"{where}: expected eid {expected_eid}")
        expected_eid = (eid + 1 if isinstance(eid, int)
                        else expected_eid + 1)
        if not isinstance(event.get("t"), (int, float)):
            errors.append(f"{where}: missing numeric 't'")
        if ev not in EVENT_FIELDS:
            errors.append(f"{where}: unknown event type {ev!r}")
            continue
        missing = [field for field in EVENT_FIELDS[ev] if field not in event]
        if missing:
            errors.append(f"{where} ({ev}): missing fields {missing}")
        if eid == 0 or not saw_header:
            if ev != "trace_begin":
                errors.append(f"{where}: stream must start with trace_begin")
            elif event.get("schema") != TRACE_SCHEMA:
                errors.append(f"{where}: schema {event.get('schema')!r} != "
                              f"{TRACE_SCHEMA}")
            saw_header = True
            continue
        if ev == "trace_begin":
            errors.append(f"{where}: duplicate trace_begin")
        elif ev == "solve_begin":
            open_solves += 1
        elif ev == "solve_end":
            open_solves -= 1
            if open_solves < 0:
                errors.append(f"{where}: solve_end without solve_begin")
                open_solves = 0
        elif ev == "scenario_begin":
            open_scenarios += 1
        elif ev == "scenario_end":
            open_scenarios -= 1
            if open_scenarios < 0:
                errors.append(f"{where}: scenario_end without "
                              f"scenario_begin")
                open_scenarios = 0
        elif ev == "portfolio_begin":
            open_portfolios += 1
        elif ev == "portfolio_end":
            open_portfolios -= 1
            if open_portfolios < 0:
                errors.append(f"{where}: portfolio_end without "
                              f"portfolio_begin")
                open_portfolios = 0
    if not saw_header:
        errors.append("empty trace: no trace_begin header")
    if open_solves:
        errors.append(f"{open_solves} unclosed solve span(s)")
    if open_scenarios:
        errors.append(f"{open_scenarios} unclosed scenario span(s)")
    if open_portfolios:
        errors.append(f"{open_portfolios} unclosed portfolio span(s)")
    return errors
