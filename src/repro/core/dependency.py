"""Port dependency graphs.

Theorem 1 of the paper states that a (deterministic) routing function is
deadlock-free iff there is no cycle in its *port dependency graph*: the graph
whose vertices are the ports of the network and whose edges are the pairs of
ports connected by the routing function.

Two related graphs appear in the methodology:

* the *routing-induced* graph, whose edges are exactly
  ``{(p, q) | ∃ reachable d . q ∈ R(p, d)}`` -- computed here by enumeration
  (:func:`routing_dependency_graph`);
* the *declared* dependency graph supplied by the user as part of the
  instantiation (``Exy_dep`` for HERMES, Section V.6), represented by the
  :class:`DependencyGraphSpec` interface.

Obligation (C-1) says the declared graph over-approximates the
routing-induced graph; obligation (C-2) says it does not over-approximate
too much (every declared edge is witnessed by a reachable destination);
obligation (C-3) says the declared graph is acyclic.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.checking.graphs import (
    CycleSearchResult,
    DirectedGraph,
    find_cycle_dfs,
    is_acyclic_by_networkx,
    is_acyclic_by_scc,
    is_acyclic_by_toposort,
)
from repro.core.constituents import RoutingFunction
from repro.core.errors import SpecificationError
from repro.network.port import Port
from repro.network.topology import Topology


class DependencyGraphSpec(abc.ABC):
    """A user-declared port dependency graph.

    The specification is given port-wise (``edges_from``), mirroring the
    paper's definition of ``Exy_dep`` as a function from a port to its set of
    successor ports.
    """

    @property
    @abc.abstractmethod
    def topology(self) -> Topology:
        """The topology the graph is defined over."""

    @abc.abstractmethod
    def edges_from(self, port: Port) -> Set[Port]:
        """The dependency successors of ``port``."""

    # -- derived ------------------------------------------------------------------
    # The derived enumerations are pure functions of ``edges_from`` but are
    # requested over and over (every obligation, theorem and portfolio
    # scenario re-reads them), so they are computed once and memoised on the
    # instance.  A spec whose ``edges_from`` answer *changes* after the
    # first enumeration must call :meth:`_invalidate_cache`.

    def ports(self) -> List[Port]:
        cached = getattr(self, "_cached_ports", None)
        if cached is None:
            cached = self.topology.ports
            self._cached_ports = cached
        return cached

    def edges(self) -> List[Tuple[Port, Port]]:
        cached = getattr(self, "_cached_edges", None)
        if cached is None:
            cached = []
            for port in self.ports():
                for successor in sorted(self.edges_from(port), key=str):
                    cached.append((port, successor))
            self._cached_edges = cached
        return cached

    def has_edge(self, source: Port, target: Port) -> bool:
        return target in self.edges_from(source)

    def to_graph(self) -> DirectedGraph[Port]:
        """Materialise the spec as a (frozen, memoised) :class:`DirectedGraph`."""
        cached = getattr(self, "_cached_graph", None)
        if cached is None:
            graph: DirectedGraph[Port] = DirectedGraph()
            for port in self.ports():
                graph.add_vertex(port)
            for source, target in self.edges():
                if not self.topology.has_port(target):
                    raise SpecificationError(
                        f"dependency edge {source} -> {target} mentions a "
                        f"port that does not exist in the topology")
                graph.add_edge(source, target)
            cached = graph.freeze()
            self._cached_graph = cached
        return cached

    def _invalidate_cache(self) -> None:
        """Drop the memoised enumerations after a spec mutation."""
        self._cached_ports = None
        self._cached_edges = None
        self._cached_graph = None

    def validate(self) -> None:
        """Check that every declared edge stays inside the topology."""
        self.to_graph()


class ExplicitDependencySpec(DependencyGraphSpec):
    """A dependency graph given by an explicit edge dictionary."""

    def __init__(self, topology: Topology,
                 edges: Dict[Port, Set[Port]]) -> None:
        self._topology = topology
        self._edges = {port: set(successors)
                       for port, successors in edges.items()}

    @property
    def topology(self) -> Topology:
        return self._topology

    def edges_from(self, port: Port) -> Set[Port]:
        return set(self._edges.get(port, set()))


def routing_dependency_graph(routing: RoutingFunction,
                             destinations: Optional[Sequence[Port]] = None,
                             cache: bool = True) -> DirectedGraph[Port]:
    """The dependency graph *induced* by a routing function.

    Edges are the pairs ``(p, q)`` such that ``q ∈ R(p, d)`` for some
    reachable destination ``d``.  This is computed by plain enumeration over
    all ports and all destinations, which is exact for bounded networks.

    The enumeration is the single most expensive construction of the
    verification flow, and the same routing function's graph is requested
    by the portfolio verdict, the cross-check, the escape analysis and the
    theorem checkers.  With ``cache=True`` (the default) the full-universe
    graph (``destinations=None``) is therefore memoised per routing object
    in the process-wide :class:`~repro.core.cache.InstanceCache`; the
    returned graph is **frozen** -- copy it (e.g. via ``subgraph``) before
    mutating.  Pass ``cache=False`` (or explicit ``destinations``) to force
    a fresh, mutable enumeration.
    """
    if cache and destinations is None:
        from repro.core.cache import instance_cache

        return instance_cache().dependency_graph(routing)
    topology = routing.topology
    if destinations is None:
        destinations = routing.destinations()
    graph: DirectedGraph[Port] = DirectedGraph()
    for port in topology.ports:
        graph.add_vertex(port)
    for port in topology.ports:
        for destination in destinations:
            if port == destination:
                continue
            if not routing.reachable(port, destination):
                continue
            for successor in routing.next_hops(port, destination):
                graph.add_edge(port, successor)
    return graph


class AcyclicityReport:
    """Result of checking a dependency graph for cycles with every method."""

    def __init__(self, graph: DirectedGraph[Port]) -> None:
        self.graph = graph
        self.dfs_result: Optional[CycleSearchResult] = None
        self.by_method: Dict[str, bool] = {}

    @property
    def acyclic(self) -> bool:
        if not self.by_method:
            raise ValueError("no acyclicity check has been run")
        return all(self.by_method.values())

    @property
    def consistent(self) -> bool:
        """Did every method agree?"""
        values = set(self.by_method.values())
        return len(values) <= 1

    @property
    def cycle(self) -> Optional[List[Port]]:
        if self.dfs_result is None:
            return None
        return self.dfs_result.cycle


def check_acyclicity(graph: DirectedGraph[Port],
                     methods: Sequence[str] = ("dfs", "scc", "toposort"),
                     ) -> AcyclicityReport:
    """Check acyclicity with several independent methods and cross-compare.

    Supported methods: ``dfs``, ``scc``, ``toposort``, ``networkx``, ``sat``
    and ``sat-incremental``.  The SAT methods are considerably slower and
    are only included when asked for (they are exercised by the Fig. 3
    benchmark); ``sat-incremental`` answers through a reusable
    :class:`~repro.checking.incremental.AcyclicityOracle` -- equivalent for
    a single graph, but the oracle form is what
    :class:`~repro.core.deadlock.DeadlockQuerySession` re-queries under
    assumptions.
    """
    report = AcyclicityReport(graph)
    for method in methods:
        if method == "dfs":
            report.dfs_result = find_cycle_dfs(graph)
            report.by_method["dfs"] = report.dfs_result.acyclic
        elif method == "scc":
            report.by_method["scc"] = is_acyclic_by_scc(graph)
        elif method == "toposort":
            report.by_method["toposort"] = is_acyclic_by_toposort(graph)
        elif method == "networkx":
            report.by_method["networkx"] = is_acyclic_by_networkx(graph)
        elif method == "sat":
            from repro.checking.encodings import is_acyclic_by_sat

            report.by_method["sat"] = is_acyclic_by_sat(graph)
        elif method == "sat-incremental":
            from repro.checking.incremental import AcyclicityOracle

            report.by_method["sat-incremental"] = \
                AcyclicityOracle(graph).is_acyclic()
        else:
            raise ValueError(f"unknown acyclicity method {method!r}")
    if not report.consistent:
        raise AssertionError(
            f"acyclicity checkers disagree: {report.by_method}")
    return report


def channel_dependency_graph(relation) -> DirectedGraph:
    """The ``(port, vc)``-granular dependency graph of a VC routing relation.

    A :class:`~repro.routing.escape.EscapeChannelRouting` (or any routing
    relation over a :class:`~repro.network.vc.VCTopology`) is a routing
    function whose "ports" are channels, so the graph is the plain
    routing-induced enumeration -- the VC-selection function being part of
    the relation is what puts the edges at channel granularity.  Named
    separately because the *verdict* read off this graph differs: for a
    relation with a separated escape class the deadlock condition is not
    whole-graph acyclicity but the (V-1)/(V-2) pair of
    :func:`repro.core.theorems.check_deadlock_freedom_vc`.
    """
    return routing_dependency_graph(relation)


def class_edges(graph: DirectedGraph, vc_classes: Iterable[int]
                ) -> List[Tuple]:
    """The edges of a channel graph lying inside the given VC classes.

    The edge-list form of :func:`class_subgraph`, shared by the (V-2)
    checkers and the portfolio driver so the class filter has one
    definition.
    """
    from repro.network.vc import vc_of

    classes = set(vc_classes)
    return [(source, target) for source, target in graph.edges()
            if vc_of(source) in classes and vc_of(target) in classes]


def class_subgraph(graph: DirectedGraph, vc_classes: Iterable[int]
                   ) -> DirectedGraph:
    """The subgraph of a channel graph induced by the given VC classes.

    Plain ports count as VC 0, so on a port-vertex graph
    ``class_subgraph(graph, {0})`` is the graph itself -- the degenerate
    single-VC case under which (V-2) coincides with the paper's Theorem 1
    condition.
    """
    from repro.network.vc import vc_of

    classes = set(vc_classes)
    return graph.subgraph(vertex for vertex in graph.vertices
                          if vc_of(vertex) in classes)


def graph_statistics(graph: DirectedGraph[Port]) -> Dict[str, int]:
    """Vertex/edge statistics used by the Fig. 3 benchmark."""
    in_degrees = graph.in_degrees()
    return {
        "vertices": graph.vertex_count,
        "edges": graph.edge_count,
        "sources": sum(1 for degree in in_degrees.values() if degree == 0),
        "sinks": sum(1 for vertex in graph.vertices
                     if graph.out_degree(vertex) == 0),
        "max_out_degree": max((graph.out_degree(vertex)
                               for vertex in graph.vertices), default=0),
        "max_in_degree": max(in_degrees.values(), default=0),
    }
