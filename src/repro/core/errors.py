"""Exception hierarchy of the GeNoC core."""

from __future__ import annotations


class GeNoCError(Exception):
    """Base class of all GeNoC errors."""


class RoutingError(GeNoCError):
    """Raised when a routing function cannot produce a route.

    Typical causes: the destination is not reachable from the source, the
    routing function does not terminate within the hop bound, or it produced
    a port that does not exist in the topology.
    """


class SwitchingError(GeNoCError):
    """Raised on inconsistent switching-policy state transitions."""


class InjectionError(GeNoCError):
    """Raised when the injection method cannot inject a travel."""


class SpecificationError(GeNoCError):
    """Raised when an instantiation violates a structural requirement
    (e.g. a dependency-graph edge mentions a non-existent port)."""


class ObligationViolation(GeNoCError):
    """Raised (optionally) when a proof obligation does not hold.

    The obligation checkers normally *return* a result object with
    counterexamples; this exception is used by the strict discharge mode of
    the verification pipeline.
    """

    def __init__(self, obligation: str, message: str) -> None:
        super().__init__(f"{obligation}: {message}")
        self.obligation = obligation
