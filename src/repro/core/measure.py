"""Termination measures for the evacuation theorem.

The Evacuation Theorem (paper Section IV-B) is proven by exhibiting a
termination measure ``μ(σ)`` that strictly decreases on every non-deadlocked
switching step -- obligation (C-5).

Two measures are provided:

* :func:`route_length_measure` -- the paper's measure ``μxy``: the sum over
  all pending travels of the remaining route length of the message (i.e. the
  number of hops the header still has to make).  It decreases whenever a
  header flit makes progress.
* :func:`flit_hop_measure` -- a refinement suited to the flit-level wormhole
  model of this library: the total number of flit movements (injections,
  hops and ejections) still required to evacuate the network.  Every flit
  movement decreases it by exactly one, so it decreases strictly on every
  non-deadlocked step regardless of which flit moved.

The paper notes (Section VII) that constraint (C-5) "has been proven nearly
generically, i.e., for any routing algorithm that is not both adaptive and
non-minimal"; correspondingly both measures here are defined purely in terms
of configurations and work for every instantiation in this library.
"""

from __future__ import annotations

from typing import Callable

from repro.core.configuration import Configuration

#: Type of termination measures.
Measure = Callable[[Configuration], int]


def route_length_measure(config: Configuration) -> int:
    """The paper's ``μxy(σ) = Σ { |m.r| : m ∈ σ.T }``.

    The remaining route length of a travel is the number of hops its header
    still has to traverse (travels whose header has not been injected yet
    count their full route).  Arrived travels contribute nothing because they
    are no longer in ``σ.T``.
    """
    total = 0
    for travel in config.travels:
        if travel.travel_id in config.progress:
            total += config.progress[travel.travel_id].remaining_route_length
        elif travel.has_route:
            total += travel.route_length
    return total


def flit_hop_measure(config: Configuration) -> int:
    """Total remaining flit movements needed to evacuate the network.

    Strictly decreases on every switching step in which at least one flit
    moves (is injected, advances one hop, or is ejected).
    """
    total = 0
    for travel in config.travels:
        if travel.travel_id in config.progress:
            total += config.progress[travel.travel_id].remaining_flit_hops()
        elif travel.has_route:
            # Not yet routed into a progress record: all flits still have the
            # whole route plus their injection ahead of them.
            total += travel.num_flits * (travel.route_length + 1)
    return total


def pending_travel_measure(config: Configuration) -> int:
    """The crudest measure: the number of travels still pending.

    It is *not* a valid termination measure for (C-5) -- a switching step in
    which messages advance without any of them arriving leaves it unchanged.
    It is included as a negative example used by the tests of the obligation
    checker (a measure for which (C-5) correctly fails to be discharged).
    """
    return len(config.travels)


def is_strictly_decreasing(values) -> bool:
    """True when the sequence of measure values is strictly decreasing."""
    return all(later < earlier for earlier, later in zip(values, values[1:]))


def is_non_increasing(values) -> bool:
    """True when the sequence of measure values never increases."""
    return all(later <= earlier for earlier, later in zip(values, values[1:]))
