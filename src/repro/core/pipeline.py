"""The end-to-end verification pipeline (paper Fig. 2).

Fig. 2 of the paper summarises the methodology: the user supplies the
constituents ``I``, ``R``, ``S`` (and the dependency graph, witness function
and measure), discharges the proof obligations, and obtains the three global
theorems plus an executable specification.  :func:`verify_instance` drives
exactly that flow for a :class:`~repro.core.instance.NoCInstance` and returns
a :class:`VerificationReport` that the examples, the reporting layer and the
Fig. 2 benchmark consume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.configuration import Configuration
from repro.core.genoc import GeNoCResult
from repro.core.instance import NoCInstance
from repro.core.obligations import (
    ObligationResult,
    check_c1,
    check_c2,
    check_c3,
    check_c4,
    check_c5,
)
from repro.core.theorems import (
    TheoremResult,
    check_correctness,
    check_deadlock_freedom,
    check_evacuation,
)
from repro.core.travel import Travel


@dataclass
class VerificationReport:
    """Everything :func:`verify_instance` establishes about an instance."""

    instance_name: str
    obligations: Dict[str, ObligationResult] = field(default_factory=dict)
    theorems: Dict[str, TheoremResult] = field(default_factory=dict)
    runs: List[GeNoCResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def all_obligations_hold(self) -> bool:
        return all(result.holds for result in self.obligations.values())

    @property
    def all_theorems_hold(self) -> bool:
        return all(result.holds for result in self.theorems.values())

    @property
    def verified(self) -> bool:
        return self.all_obligations_hold and self.all_theorems_hold

    def summary_lines(self) -> List[str]:
        lines = [f"Verification report for {self.instance_name}"]
        lines.append("  Proof obligations:")
        for name, result in self.obligations.items():
            status = "holds" if result.holds else "VIOLATED"
            lines.append(f"    {name:<6} {status:<9} "
                         f"({result.checks} checks, "
                         f"{result.elapsed_seconds:.3f}s)")
        lines.append("  Theorems:")
        for name, result in self.theorems.items():
            status = "holds" if result.holds else "VIOLATED"
            lines.append(f"    {name:<10} {status:<9} "
                         f"({result.checks} checks)")
        if self.runs:
            evacuated = sum(1 for run in self.runs if run.evacuated)
            lines.append(f"  Simulated workloads: {len(self.runs)} "
                         f"({evacuated} fully evacuated)")
        lines.append(f"  Total time: {self.elapsed_seconds:.3f}s")
        lines.append(f"  VERDICT: "
                     f"{'verified' if self.verified else 'NOT verified'}")
        return lines

    def summary(self) -> str:
        return "\n".join(self.summary_lines())


def discharge_obligations(instance: NoCInstance,
                          workloads: Sequence[Sequence[Travel]] = (),
                          c3_methods: Sequence[str] = ("dfs", "scc", "toposort"),
                          ) -> Dict[str, ObligationResult]:
    """Discharge (C-1) ... (C-5) for an instance.

    ``workloads`` (lists of travels) provide the configurations over which
    the extensional obligations (C-4) and (C-5) are checked; if none are
    supplied those two obligations are reported as holding vacuously with
    zero checks.
    """
    results: Dict[str, ObligationResult] = {}
    if instance.dependency_spec is not None:
        results["C-1"] = check_c1(instance.routing, instance.dependency_spec)
        results["C-2"] = check_c2(instance.routing, instance.dependency_spec,
                                  instance.witness_destination)
        results["C-3"] = check_c3(instance.dependency_spec,
                                  methods=c3_methods)
    configurations: List[Configuration] = []
    for workload in workloads:
        config = instance.initial_configuration(workload)
        configurations.append(
            instance.routing.route_configuration(config))
    results["C-4"] = check_c4(instance.injection, configurations)
    results["C-5"] = check_c5(instance.switching, instance.measure,
                              configurations)
    return results


def verify_instance(instance: NoCInstance,
                    workloads: Sequence[Sequence[Travel]] = (),
                    c3_methods: Sequence[str] = ("dfs", "scc", "toposort"),
                    run_workloads: bool = True) -> VerificationReport:
    """Run the full Fig. 2 pipeline on an instance.

    1. discharge the proof obligations;
    2. conclude DeadThm from (C-1)-(C-3);
    3. run GeNoC on every workload and check CorrThm and EvacThm on the runs.
    """
    start = time.perf_counter()
    report = VerificationReport(instance_name=instance.name)
    report.obligations = discharge_obligations(instance, workloads,
                                               c3_methods=c3_methods)

    if instance.dependency_spec is not None:
        report.theorems["DeadThm"] = check_deadlock_freedom(
            instance, methods=c3_methods)

    if run_workloads and workloads:
        correctness_failures: List[str] = []
        evacuation_failures: List[str] = []
        correctness_checks = 0
        evacuation_checks = 0
        engine = instance.engine()
        for workload in workloads:
            original = instance.initial_configuration(workload)
            result = engine.run(original.copy())
            report.runs.append(result)
            corr = check_correctness(instance, original, result)
            evac = check_evacuation(instance, original, result)
            correctness_failures.extend(corr.counterexamples)
            evacuation_failures.extend(evac.counterexamples)
            correctness_checks += corr.checks
            evacuation_checks += evac.checks
        report.theorems["CorrThm"] = TheoremResult(
            name="CorrThm", holds=not correctness_failures,
            checks=correctness_checks, counterexamples=correctness_failures)
        report.theorems["EvacThm"] = TheoremResult(
            name="EvacThm", holds=not evacuation_failures,
            checks=evacuation_checks, counterexamples=evacuation_failures)

    report.elapsed_seconds = time.perf_counter() - start
    return report
