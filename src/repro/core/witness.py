"""Constructive witnesses for both directions of Theorem 1.

Theorem 1 (paper Section IV-A) is an equivalence:

* **necessity** -- from a deadlock configuration one can construct a cycle in
  the port dependency graph (implemented in
  :func:`repro.core.deadlock.analyse_deadlock`);
* **sufficiency** -- from a cycle in the dependency graph one can construct a
  deadlock configuration: every port of the cycle is filled with messages
  whose next hop (by constraint (C-2)) is the next port of the cycle, so no
  message can move.

This module implements the sufficiency construction executably
(:func:`cycle_to_deadlock_configuration`) and a round-trip check
(:func:`verify_witness_roundtrip`) that builds the deadlock configuration
from a cycle, confirms with the switching policy that it is indeed a
deadlock, and then re-extracts a cycle from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.configuration import Configuration, TravelProgress
from repro.core.constituents import RoutingFunction, SwitchingPolicy
from repro.core.deadlock import DeadlockAnalysis, analyse_deadlock, is_deadlock
from repro.core.errors import SpecificationError
from repro.core.state import NetworkState
from repro.core.travel import Travel
from repro.network.port import Port
from repro.network.topology import Topology

#: A witness-destination function: given a dependency edge ``(p0, p1)``,
#: return a reachable destination ``d`` such that ``p1 ∈ R(p0, d)``
#: (the ``find_dest`` of the paper, Section VI-A).
WitnessDestination = Callable[[Port, Port], Port]


@dataclass
class DeadlockWitness:
    """A constructed deadlock configuration plus its provenance."""

    configuration: Configuration
    cycle: List[Port]
    #: One travel per cycle port, in cycle order.
    travels: List[Travel] = field(default_factory=list)
    #: Destination chosen for each cycle port.
    destinations: List[Port] = field(default_factory=list)


def cycle_to_deadlock_configuration(
        cycle: Sequence[Port],
        routing: RoutingFunction,
        witness_destination: WitnessDestination,
        capacity: int = 1,
        extra_flits: int = 0) -> DeadlockWitness:
    """Build a deadlock configuration from a dependency-graph cycle.

    For every consecutive pair ``(p_i, p_{i+1})`` of the cycle a message is
    created whose header currently occupies ``p_i`` (filling all of its
    buffers) and whose destination ``d_i = witness_destination(p_i, p_{i+1})``
    makes the routing function choose ``p_{i+1}`` as the next hop.  Since all
    cycle ports are full and owned by distinct messages, no header can
    advance: the configuration is a deadlock.

    Parameters
    ----------
    cycle:
        The ports of the cycle, in order (the edge from the last port back to
        the first is implicit).
    routing:
        The (deterministic) routing function under test.
    witness_destination:
        The (C-2) witness function.
    capacity:
        Buffer capacity of every port of the constructed state.
    extra_flits:
        Additional flits per message beyond the ``capacity`` flits needed to
        fill the holding port (they remain queued at the source).
    """
    if len(cycle) < 2:
        raise SpecificationError("a dependency cycle has at least two ports")
    if not routing.is_deterministic:
        raise SpecificationError(
            "the sufficiency construction of Theorem 1 applies to "
            "deterministic routing functions")

    topology = routing.topology
    state = NetworkState.empty(topology, capacity=capacity)
    travels: List[Travel] = []
    destinations: List[Port] = []
    progress = {}

    for index, port in enumerate(cycle):
        next_port = cycle[(index + 1) % len(cycle)]
        destination = witness_destination(port, next_port)
        if not routing.reachable(port, destination):
            raise SpecificationError(
                f"witness destination {destination} is not reachable from "
                f"{port}")
        hops = routing.next_hops(port, destination)
        if next_port not in hops:
            raise SpecificationError(
                f"witness destination {destination} does not route "
                f"{port} -> {next_port} (got {[str(h) for h in hops]}); "
                f"obligation (C-2) fails for this edge")
        route = routing.compute_route(port, destination)
        num_flits = capacity + max(extra_flits, 0)
        travel = Travel(travel_id=1000 + index, source=port,
                        destination=destination, num_flits=num_flits,
                        route=tuple(route))
        record = TravelProgress.initial(travel)
        # Fill the holding port with the first ``capacity`` flits.
        for flit_index, flit in enumerate(travel.flits()):
            if flit_index < capacity:
                state.accept_flit(port, flit)
                record.positions[flit_index] = 0
        travels.append(travel)
        destinations.append(destination)
        progress[travel.travel_id] = record

    configuration = Configuration(travels=travels, state=state, arrived=[],
                                  progress=progress)
    return DeadlockWitness(configuration=configuration, cycle=list(cycle),
                           travels=travels, destinations=destinations)


@dataclass
class WitnessRoundTrip:
    """Result of the cycle -> deadlock -> cycle round trip."""

    witness: DeadlockWitness
    is_deadlock: bool
    analysis: DeadlockAnalysis
    recovered_cycle: Optional[List[Port]]

    @property
    def success(self) -> bool:
        return self.is_deadlock and self.recovered_cycle is not None


def verify_witness_roundtrip(cycle: Sequence[Port],
                             routing: RoutingFunction,
                             switching: SwitchingPolicy,
                             witness_destination: WitnessDestination,
                             capacity: int = 1) -> WitnessRoundTrip:
    """Exercise both directions of Theorem 1 on a concrete cycle.

    1. (sufficiency) build a deadlock configuration from the cycle;
    2. confirm with the switching policy that it is a deadlock (``Ω`` holds);
    3. (necessity) re-extract a cycle from the deadlock configuration.
    """
    witness = cycle_to_deadlock_configuration(
        cycle, routing, witness_destination, capacity=capacity)
    deadlocked = is_deadlock(witness.configuration, switching)
    analysis = analyse_deadlock(witness.configuration, switching)
    return WitnessRoundTrip(witness=witness, is_deadlock=deadlocked,
                            analysis=analysis,
                            recovered_cycle=analysis.cycle)
