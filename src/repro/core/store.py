"""Durable content-addressed verdict store for portfolio sweeps.

A verdict is a deterministic function of a frozen
:class:`~repro.core.spec.ScenarioSpec`, the run parameters, and the
engine version -- so once a sweep has proved a scenario group, no later
sweep with the same inputs should pay for the solver again.  This module
is the persistent cross-run cache that makes that true: a directory of
content-addressed records that many batch runs (and ``repro serve``
workers) share safely.

Granularity
-----------

Records are whole *scenario groups*, not single scenarios.  Per-scenario
solver-stat deltas and the group's ``session_stats`` depend on the whole
group's composition, order, and seed (sessions share a solver and a
cache), so only replaying a complete identical group reproduces a
``comparable_dict()``-identical report.  The record key is the sha256 of
the canonical JSON of ``{kind, run_key, group, specs}`` where ``specs``
is the ordered list of per-scenario canonical hashes -- i.e. the content
address of everything the verdicts depend on *except* the engine.

The engine fingerprint is deliberately stored **inside** the record
rather than folded into the key: on lookup a fingerprint mismatch
*evicts* the stale record (the new engine's result will overwrite it),
instead of stranding dead objects under never-again-computed keys.

Durability contract
-------------------

* **Atomic writes.** Records are written to a temp file in the same
  directory, flushed, ``fsync``\\ ed, then ``os.replace``\\ d into place.
  Readers never observe a half-written record under the final name.
* **Checksums.** Every record embeds a sha256 over its own canonical
  JSON (minus the checksum field).  A record that fails to parse or to
  verify is *quarantined* -- moved into ``quarantine/`` with a logged
  reason -- and its group recomputed.  Corruption never crashes a sweep.
* **Advisory locking.** Writers serialize on ``store.lock`` via
  ``fcntl.flock`` with a bounded timeout and deterministic exponential
  backoff.  A lock timeout skips the write (counted), never blocks the
  sweep.  Lookups are lock-free: atomic replace makes reads safe.
* **Graceful degradation.** A store that is version-incompatible or
  unreadable runs the sweep cache-less (mode ``off``); one that is
  readable but unwritable still serves hits but skips writes (mode
  ``ro``).  ``VerdictStore`` never raises into the portfolio engine.
"""

from __future__ import annotations

import errno
import hashlib
import json
import logging
import os
import tempfile
from typing import Any, Dict, List, Optional, Tuple

try:  # pragma: no cover - platform gate, exercised only off-linux
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

logger = logging.getLogger("repro.store")

#: On-disk record/meta schema version.  Bump on incompatible layout
#: changes; an unknown version degrades the store to ``off``.
STORE_SCHEMA = 1

#: Counter names reported by :meth:`VerdictStore.stats` (and merged by
#: ``merge_shard_reports``).  Kept in one place so report consumers and
#: the trace lane agree on the vocabulary.
STORE_COUNTERS = (
    "hits", "misses", "writes", "evicted", "quarantined",
    "lock_timeouts", "write_errors",
)


def group_record_key(kind: str, run_key: Dict[str, Any], group: str,
                     specs: List[Tuple[int, str]]) -> str:
    """Content address of a scenario group's verdict record.

    sha256 over the canonical JSON of everything the verdicts depend on
    apart from the engine itself: the run kind, the run key (seed,
    analyse/cross-check flags, shard), the group key, and the ordered
    ``(index, scenario_fingerprint)`` pairs.
    """
    payload = {
        "kind": kind,
        "run_key": run_key,
        "group": group,
        "specs": [[index, spec_hash] for index, spec_hash in specs],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def record_checksum(record: Dict[str, Any]) -> str:
    """sha256 over the record's canonical JSON minus its checksum field."""
    body = {key: value for key, value in record.items() if key != "checksum"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class _StoreLock:
    """Advisory exclusive lock with bounded timeout and backoff.

    ``fcntl.flock`` conflicts across file descriptors even within one
    process, so tests can stage contention without forking.  Backoff is
    deterministic (no jitter): 1ms, 2ms, 4ms ... capped at 50ms, until
    ``timeout`` seconds have been slept in total.
    """

    def __init__(self, path: str, timeout: float) -> None:
        self.path = path
        self.timeout = timeout
        self._handle = None

    def acquire(self) -> bool:
        if fcntl is None:  # pragma: no cover - non-posix fallback
            return True
        handle = open(self.path, "a+")
        slept = 0.0
        delay = 0.001
        while True:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                self._handle = handle
                return True
            except OSError:
                if slept >= self.timeout:
                    handle.close()
                    return False
                import time

                time.sleep(delay)
                slept += delay
                delay = min(delay * 2, 0.05)

    def release(self) -> None:
        if self._handle is not None:
            if fcntl is not None:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            self._handle.close()
            self._handle = None


class VerdictStore:
    """A shared directory of content-addressed group verdict records.

    Layout::

        <root>/store-meta.json        # {"schema": 1}
        <root>/objects/<k[:2]>/<k>.json
        <root>/quarantine/<k>.<reason>.json
        <root>/store.lock             # advisory writer lock

    ``mode`` after :meth:`open`:

    ``"rw"``
        normal operation -- lookups and writes.
    ``"ro"``
        the directory is readable but not writable (or ``readonly=True``
        was requested): lookups only, writes silently skipped.
    ``"off"``
        unusable (unreadable, or schema-incompatible): every lookup
        misses, every write is skipped.  The sweep recomputes everything
        exactly as if no store had been given.
    """

    def __init__(self, root: str, readonly: bool = False,
                 lock_timeout: float = 5.0) -> None:
        self.root = root
        self.readonly = bool(readonly)
        self.lock_timeout = lock_timeout
        self.mode = "off"
        self.degraded_reason: Optional[str] = None
        self.counters: Dict[str, int] = {name: 0 for name in STORE_COUNTERS}
        self._trace = None

    # -- lifecycle -------------------------------------------------------

    def open(self) -> "VerdictStore":
        """Probe the directory and settle on a mode.  Never raises."""
        try:
            os.makedirs(os.path.join(self.root, "objects"), exist_ok=True)
            os.makedirs(os.path.join(self.root, "quarantine"), exist_ok=True)
        except OSError:
            pass  # may still be readable; probed below
        meta_path = os.path.join(self.root, "store-meta.json")
        meta = None
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, ValueError) as exc:
            if os.path.exists(meta_path):
                # Unreadable or corrupt meta: we cannot trust the layout.
                self._degrade("off", "store-meta unreadable: %s" % exc)
                return self
        if meta is not None and meta.get("schema") != STORE_SCHEMA:
            self._degrade(
                "off", "store schema %r is not %d; refusing to mix layouts"
                % (meta.get("schema"), STORE_SCHEMA))
            return self
        if not os.path.isdir(os.path.join(self.root, "objects")):
            self._degrade("off", "store objects/ directory is unavailable")
            return self
        writable = not self.readonly and os.access(self.root, os.W_OK)
        if writable and meta is None:
            if not self._write_meta(meta_path):
                writable = False
        if writable:
            self.mode = "rw"
        else:
            self.mode = "ro"
            if not self.readonly:
                self.degraded_reason = "store directory is not writable"
                logger.warning("verdict store %s: %s; serving lookups only",
                               self.root, self.degraded_reason)
        return self

    def _write_meta(self, meta_path: str) -> bool:
        try:
            self._atomic_write(meta_path, {"schema": STORE_SCHEMA})
            return True
        except OSError as exc:
            self.degraded_reason = "cannot initialise store meta: %s" % exc
            logger.warning("verdict store %s: %s", self.root,
                           self.degraded_reason)
            return False

    def _degrade(self, mode: str, reason: str) -> None:
        self.mode = mode
        self.degraded_reason = reason
        logger.warning("verdict store %s degraded to %s: %s",
                       self.root, mode, reason)

    def attach_trace(self, trace) -> None:
        """Emit ``store_lookup`` / ``store_write`` events to ``trace``."""
        self._trace = trace

    # -- paths -----------------------------------------------------------

    def _object_path(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], key + ".json")

    # -- low-level durable IO -------------------------------------------

    def _atomic_write(self, path: str, payload: Dict[str, Any]) -> None:
        """write-temp -> flush -> fsync -> rename, in the target dir."""
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=directory,
            prefix=".tmp-", suffix=".json", delete=False)
        try:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
            handle.close()
            os.replace(handle.name, path)
        except BaseException:
            handle.close()
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def _quarantine(self, key: str, path: str, reason: str) -> None:
        """Move a damaged record aside; never let the failure escape."""
        self.counters["quarantined"] += 1
        destination = os.path.join(
            self.root, "quarantine", "%s.%s.json" % (key, reason))
        try:
            os.makedirs(os.path.dirname(destination), exist_ok=True)
            os.replace(path, destination)
            logger.warning(
                "verdict store %s: quarantined record %s (%s); "
                "the group will be recomputed", self.root, key[:16], reason)
        except OSError as exc:
            # Read-only stores cannot move the record aside; dropping it
            # from consideration is all that matters for correctness.
            logger.warning(
                "verdict store %s: record %s is damaged (%s) and could "
                "not be quarantined (%s); ignoring it", self.root,
                key[:16], reason, exc)

    def _evict(self, key: str, path: str, fingerprint: str) -> None:
        self.counters["evicted"] += 1
        try:
            os.unlink(path)
            logger.info(
                "verdict store %s: evicted record %s (stale engine "
                "fingerprint %s)", self.root, key[:16], fingerprint)
        except OSError:
            pass

    # -- record API ------------------------------------------------------

    def lookup(self, fingerprint: str, kind: str, run_key: Dict[str, Any],
               group: str, specs: List[Tuple[int, str]],
               ) -> Optional[Dict[str, Any]]:
        """The stored record for this group, or ``None`` (a miss).

        Misses are indistinguishable by cause on purpose -- absent,
        quarantined-just-now, evicted-just-now, and store-off all mean
        "recompute"; the counters carry the distinction for reporting.
        """
        key = group_record_key(kind, run_key, group, specs)
        record = self._lookup_key(key, fingerprint, kind, run_key,
                                  group, specs)
        if self._trace is not None:
            self._trace.emit("store_lookup", group=group, key=key,
                             hit=record is not None)
        if record is None:
            self.counters["misses"] += 1
        else:
            self.counters["hits"] += 1
        return record

    def _lookup_key(self, key: str, fingerprint: str, kind: str,
                    run_key: Dict[str, Any], group: str,
                    specs: List[Tuple[int, str]],
                    ) -> Optional[Dict[str, Any]]:
        if self.mode == "off":
            return None
        path = self._object_path(key)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return None
        try:
            # Bytes on purpose: undecodable garbage (bit rot) must land in
            # quarantine like any other torn record, not raise.
            record = json.loads(raw)
        except ValueError:
            self._quarantine(key, path, "torn")
            return None
        if not isinstance(record, dict):
            self._quarantine(key, path, "malformed")
            return None
        if record.get("checksum") != record_checksum(record):
            self._quarantine(key, path, "checksum")
            return None
        if record.get("schema") != STORE_SCHEMA:
            self._quarantine(key, path, "schema")
            return None
        if record.get("fingerprint") != fingerprint:
            self._evict(key, path, record.get("fingerprint"))
            return None
        # Defence in depth: the key already hashes these, but a record
        # renamed into the wrong slot must not replay a foreign group.
        if (record.get("kind") != kind or record.get("run_key") != run_key
                or record.get("group") != group
                or record.get("specs") != [[i, h] for i, h in specs]):
            self._quarantine(key, path, "mismatch")
            return None
        return record

    def record(self, fingerprint: str, kind: str, run_key: Dict[str, Any],
               group: str, specs: List[Tuple[int, str]],
               verdicts: List[Tuple[int, Dict[str, Any]]],
               session_stats: Dict[str, int],
               cache: Dict[str, int]) -> bool:
        """Durably persist one fully solved group.  Never raises.

        Returns ``True`` if the record landed on disk.  Only all-``ok``
        groups should be recorded (the caller enforces that, mirroring
        the checkpoint journal's rule): timeout/error verdicts describe
        a run, not the scenarios.
        """
        written = False
        if self.mode == "rw":
            written = self._record_locked(
                fingerprint, kind, run_key, group, specs,
                verdicts, session_stats, cache)
        if self._trace is not None:
            self._trace.emit("store_write", group=group, written=written)
        return written

    def _record_locked(self, fingerprint, kind, run_key, group, specs,
                       verdicts, session_stats, cache) -> bool:
        key = group_record_key(kind, run_key, group, specs)
        record = {
            "schema": STORE_SCHEMA,
            "kind": kind,
            "fingerprint": fingerprint,
            "run_key": run_key,
            "group": group,
            "specs": [[index, spec_hash] for index, spec_hash in specs],
            "verdicts": [dict(verdict, index=index)
                         for index, verdict in verdicts],
            "session_stats": dict(session_stats),
            "cache": dict(cache),
        }
        record["checksum"] = record_checksum(record)
        lock = _StoreLock(os.path.join(self.root, "store.lock"),
                          self.lock_timeout)
        try:
            if not lock.acquire():
                self.counters["lock_timeouts"] += 1
                logger.warning(
                    "verdict store %s: writer lock timed out after %.1fs; "
                    "skipping write for group %s", self.root,
                    self.lock_timeout, group)
                return False
        except OSError as exc:
            self.counters["write_errors"] += 1
            logger.warning("verdict store %s: cannot take writer lock "
                           "(%s); skipping write", self.root, exc)
            return False
        try:
            self._atomic_write(self._object_path(key), record)
            self.counters["writes"] += 1
            return True
        except OSError as exc:
            self.counters["write_errors"] += 1
            if exc.errno in (errno.EACCES, errno.EROFS, errno.EPERM):
                # The directory went read-only under us; stop trying.
                self._degrade("ro", "store became unwritable: %s" % exc)
            else:
                logger.warning("verdict store %s: write failed for group "
                               "%s (%s)", self.root, group, exc)
            return False
        finally:
            lock.release()

    # -- reporting -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Session counters plus mode, for the report's ``store`` block."""
        payload: Dict[str, Any] = {"mode": self.mode}
        payload.update(self.counters)
        if self.degraded_reason:
            payload["degraded_reason"] = self.degraded_reason
        return payload


def scan_store(root: str) -> Dict[str, Any]:
    """Offline inventory of a store directory (``repro store stats``).

    Walks ``objects/`` verifying each record's checksum and schema, and
    counts quarantined files.  Read-only and tolerant: damaged records
    are *counted*, not moved.
    """
    objects_dir = os.path.join(root, "objects")
    quarantine_dir = os.path.join(root, "quarantine")
    meta_path = os.path.join(root, "store-meta.json")
    summary: Dict[str, Any] = {
        "root": root,
        "schema": None,
        "records": 0,
        "damaged": 0,
        "quarantined": 0,
        "fingerprints": {},
        "kinds": {},
    }
    try:
        with open(meta_path, "r", encoding="utf-8") as handle:
            summary["schema"] = json.load(handle).get("schema")
    except (OSError, ValueError):
        pass
    if os.path.isdir(quarantine_dir):
        summary["quarantined"] = sum(
            1 for name in os.listdir(quarantine_dir)
            if name.endswith(".json"))
    if not os.path.isdir(objects_dir):
        return summary
    for dirpath, _dirnames, filenames in os.walk(objects_dir):
        for name in sorted(filenames):
            if not name.endswith(".json") or name.startswith(".tmp-"):
                continue
            path = os.path.join(dirpath, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    record = json.load(handle)
                if not isinstance(record, dict) or \
                        record.get("checksum") != record_checksum(record):
                    raise ValueError("checksum mismatch")
            except (OSError, ValueError):
                summary["damaged"] += 1
                continue
            summary["records"] += 1
            fingerprint = record.get("fingerprint", "?")
            summary["fingerprints"][fingerprint] = \
                summary["fingerprints"].get(fingerprint, 0) + 1
            kind = record.get("kind", "?")
            summary["kinds"][kind] = summary["kinds"].get(kind, 0) + 1
    return summary
