"""Randomized-topology fuzz campaign over the deadlock deciders.

The repo decides deadlock freedom three independent ways -- the CDCL
session (:mod:`repro.core.deadlock`), the explicit graph algorithms
(:mod:`repro.checking.graphs`) and, at small sizes, a brute-force
self-reachability sweep defined right here -- and can additionally run any
verdict through the GeNoC simulation engine.  This module points all of
them at *randomized* instances: seeded irregular scenario specs (topology
kind, dimensions, routing token, VC count and fault set all drawn from a
deterministic per-seed RNG) whose verdicts must agree decider by decider.

Disagreement taxonomy (what the campaign reports):

* ``cdcl-vs-explicit`` -- the incremental SAT verdict differs from the DFS
  cycle search on the same graph: a solver or encoding bug.
* ``explicit-internal`` -- DFS, SCC decomposition and Kahn toposort
  disagree among themselves: a graph-algorithm bug.
* ``brute-vs-explicit`` -- the quadratic self-reachability sweep differs:
  the clever algorithms miss a cycle or invent one.
* ``sim-vs-verdict`` -- an instance *proved* deadlock-free deadlocks in
  simulation: the model and the prover disagree about the design (the
  hard direction; a *prone* verdict without a simulated stall is fine --
  prone means "some adversarial workload exists", not "every workload
  stalls" -- so those are only recorded).

Every draw is deterministic in the campaign seed (CRC-32 keyed RNGs, no
salted ``hash()``), so a failing seed replays exactly.
"""

from __future__ import annotations

import random
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import SpecificationError
from repro.core.spec import ScenarioSpec

#: Mesh routing tokens the fuzzer draws from (the full registered set).
FUZZ_MESH_ROUTINGS = ("xy", "yx", "west-first", "north-last",
                      "negative-first", "odd-even", "adaptive", "zigzag")
FUZZ_RING_ROUTINGS = ("chain", "clockwise")
#: Scenario kinds with their draw weights: plain meshes dominate (largest
#: routing variety), the VC kinds keep the escape condition in the mix.
FUZZ_KINDS = (("mesh", 4), ("ring", 2), ("vc-mesh", 2), ("vc-torus", 1),
              ("vc-ring", 1))


def _fuzz_rng(campaign_seed: int, index: int) -> random.Random:
    key = f"fuzz:{campaign_seed}:{index}"
    return random.Random(zlib.crc32(key.encode("utf-8")))


def _base_topology(kind: str, dims: Tuple[int, ...]):
    """The bare (healthy) topology of a kind, for fault feasibility."""
    from repro.network.mesh import Mesh2D
    from repro.network.ring import Ring
    from repro.network.torus import Torus2D

    if kind in ("mesh", "vc-mesh"):
        return Mesh2D(dims[0], dims[1])
    if kind == "vc-torus":
        return Torus2D(dims[0], dims[1])
    return Ring(dims[0], bidirectional=True)


def _feasible_faults(kind: str, dims: Tuple[int, ...], faults: int,
                     fault_seed: int) -> int:
    """The largest ``k <= faults`` the sampler can place on this fabric.

    Mirrors the builders' sampling calls exactly (router kills are only
    drawn on meshes and tori); tiny fabrics may not admit any fault
    without disconnecting, in which case the draw degrades to ``0``.
    """
    from repro.network.faults import sample_fault_spec

    allow_routers = kind in ("mesh", "vc-mesh", "vc-torus")
    topology = _base_topology(kind, dims)
    while faults > 0:
        try:
            sample_fault_spec(topology, faults, fault_seed,
                              allow_routers=allow_routers)
            return faults
        except SpecificationError:
            faults -= 1
    return 0


def generate_fuzz_specs(count: int,
                        max_size: Tuple[int, int] = (3, 3),
                        campaign_seed: int = 2010,
                        max_faults: int = 2) -> List[ScenarioSpec]:
    """``count`` seeded irregular scenario specs, deterministically.

    Instance ``i`` of campaign ``s`` is always the same spec; the sequence
    deliberately mixes kinds, dimensions, routing tokens, VC counts and
    fault sets.  ``max_size`` bounds mesh/torus dimensions (rings are
    bounded by the corresponding perimeter).
    """
    max_w, max_h = max_size
    if max_w < 2 or max_h < 2:
        raise SpecificationError("fuzz max size must be at least 2x2")
    weighted = [kind for kind, weight in FUZZ_KINDS for _ in range(weight)]
    specs: List[ScenarioSpec] = []
    for index in range(count):
        rng = _fuzz_rng(campaign_seed, index)
        kind = rng.choice(weighted)
        routing: Optional[str] = None
        num_vcs = 1
        if kind in ("mesh", "vc-mesh", "vc-torus"):
            width = rng.randint(2, max_w)
            height = rng.randint(2, max_h)
            dims: Tuple[int, ...] = (width, height)
        else:
            dims = (rng.randint(3, max(4, max_w + max_h)),)
        if kind == "mesh":
            routing = rng.choice(FUZZ_MESH_ROUTINGS)
        elif kind == "ring":
            routing = rng.choice(FUZZ_RING_ROUTINGS)
        else:
            num_vcs = rng.randint(1, 3)
        faults = rng.randint(0, max_faults)
        fault_seed = rng.randint(0, 10_000)
        if faults:
            faults = _feasible_faults(kind, dims, faults, fault_seed)
        spec = ScenarioSpec(kind=kind, dims=dims, routing=routing,
                            num_vcs=num_vcs, buffers=rng.choice((1, 2)),
                            faults=faults, fault_seed=fault_seed)
        specs.append(spec.normalized())
    return specs


# ---------------------------------------------------------------------------
# The brute-force decider
# ---------------------------------------------------------------------------

def brute_force_acyclic(edges: Sequence[Tuple],
                        max_vertices: int = 400) -> Optional[bool]:
    """Acyclicity by per-vertex forward self-reachability, or ``None``.

    The dumbest decider that can be written independently of the DFS
    colouring and SCC machinery: for every vertex, walk the forward
    closure of its successors and ask whether the vertex shows up again.
    Quadratic (``O(V * E)``), which is exactly why it is trustworthy -- and
    why it refuses graphs beyond ``max_vertices`` (returning ``None``).
    """
    successors: Dict[object, List[object]] = {}
    for source, target in edges:
        successors.setdefault(source, []).append(target)
        successors.setdefault(target, [])
    if len(successors) > max_vertices:
        return None
    for start in successors:
        frontier = list(successors[start])
        seen = set(frontier)
        while frontier:
            node = frontier.pop()
            if node == start:
                return False
            for following in successors[node]:
                if following not in seen:
                    seen.add(following)
                    frontier.append(following)
    return True


# ---------------------------------------------------------------------------
# Campaign results
# ---------------------------------------------------------------------------

@dataclass
class FuzzVerdict:
    """The cross-validated verdict of one fuzzed instance."""

    scenario: str
    instance: str
    condition: str                      #: "theorem1" | "vc-escape"
    deadlock_free: bool                 #: the agreed CDCL verdict
    cdcl_free: bool
    explicit_free: bool
    brute_free: Optional[bool]          #: None when the graph was too big
    edges: int
    sim_outcome: Optional[str]          #: "evacuated" | "deadlocked" | None
    disagreements: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    spec: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def to_json_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "instance": self.instance,
            "condition": self.condition,
            "deadlock_free": self.deadlock_free,
            "cdcl_free": self.cdcl_free,
            "explicit_free": self.explicit_free,
            "brute_free": self.brute_free,
            "edges": self.edges,
            "sim_outcome": self.sim_outcome,
            "disagreements": list(self.disagreements),
            "elapsed_ms": round(self.elapsed_seconds * 1e3, 2),
            "spec": self.spec,
        }


@dataclass
class FuzzReport:
    """The outcome of one :func:`run_fuzz_campaign`."""

    campaign_seed: int
    max_size: Tuple[int, int]
    verdicts: List[FuzzVerdict] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def disagreements(self) -> List[str]:
        return [f"{verdict.scenario}: {reason}"
                for verdict in self.verdicts
                for reason in verdict.disagreements]

    @property
    def ok(self) -> bool:
        return not self.disagreements

    @property
    def free_count(self) -> int:
        return sum(1 for v in self.verdicts if v.deadlock_free)

    @property
    def prone_count(self) -> int:
        return sum(1 for v in self.verdicts if not v.deadlock_free)

    @property
    def brute_checked(self) -> int:
        return sum(1 for v in self.verdicts if v.brute_free is not None)

    @property
    def simulated(self) -> int:
        return sum(1 for v in self.verdicts if v.sim_outcome is not None)

    def to_json_dict(self) -> dict:
        return {
            "campaign_seed": self.campaign_seed,
            "max_size": list(self.max_size),
            "instances": len(self.verdicts),
            "deadlock_free": self.free_count,
            "deadlock_prone": self.prone_count,
            "brute_checked": self.brute_checked,
            "simulated": self.simulated,
            "disagreements": self.disagreements,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "verdicts": [v.to_json_dict() for v in self.verdicts],
        }

    def format_summary(self) -> str:
        lines = [
            f"fuzz campaign: {len(self.verdicts)} instances "
            f"(seed {self.campaign_seed}, "
            f"max {self.max_size[0]}x{self.max_size[1]}), "
            f"{self.free_count} deadlock-free, "
            f"{self.prone_count} deadlock-prone, "
            f"{self.brute_checked} brute-force checked, "
            f"{self.simulated} simulated, "
            f"{self.elapsed_seconds:.2f}s",
        ]
        if self.ok:
            lines.append("all deciders agree on every instance")
        else:
            lines.append(f"{len(self.disagreements)} DISAGREEMENTS:")
            lines.extend(f"  {entry}" for entry in self.disagreements)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The campaign driver
# ---------------------------------------------------------------------------

def _decide_instance(instance, brute_force: bool,
                     max_brute_vertices: int) -> Tuple[str, bool, bool,
                                                       Optional[bool], int,
                                                       List[str]]:
    """All non-simulation deciders on one instance, plus disagreements."""
    from repro.checking.graphs import (
        find_cycle_dfs,
        is_acyclic_by_scc,
        topological_sort,
    )
    from repro.core.deadlock import DeadlockQuerySession
    from repro.core.dependency import (
        channel_dependency_graph,
        class_edges,
        routing_dependency_graph,
    )
    from repro.routing.escape import EscapeChannelRouting

    disagreements: List[str] = []
    relation = instance.routing
    if isinstance(relation, EscapeChannelRouting):
        from repro.core.obligations import check_v1_escape_coverage
        from repro.core.theorems import (
            check_deadlock_freedom_vc,
            check_deadlock_freedom_vc_incremental,
        )

        condition = "vc-escape"
        graph = channel_dependency_graph(relation)
        coverage = check_v1_escape_coverage(relation)
        explicit = check_deadlock_freedom_vc(
            relation, graph=graph, coverage=coverage).holds
        cdcl = check_deadlock_freedom_vc_incremental(
            relation, graph=graph, coverage=coverage).holds
        # (V-2) restricted to the escape class is what brute force re-derives;
        # (V-1) coverage is shared (it is a plain enumeration, not a solver).
        escape_edges = class_edges(graph, relation.escape_vcs)
        brute_acyclic = (brute_force_acyclic(escape_edges,
                                             max_vertices=max_brute_vertices)
                         if brute_force else None)
        brute = (None if brute_acyclic is None
                 else coverage.holds and brute_acyclic)
        edge_count = graph.edge_count
    else:
        condition = "theorem1"
        graph = routing_dependency_graph(relation)
        dfs_free = find_cycle_dfs(graph).acyclic
        scc_free = is_acyclic_by_scc(graph)
        topo_free = topological_sort(graph) is not None
        if not (dfs_free == scc_free == topo_free):
            disagreements.append(
                f"explicit-internal: dfs={dfs_free} scc={scc_free} "
                f"toposort={topo_free}")
        explicit = dfs_free
        session = DeadlockQuerySession.for_routing(relation)
        cdcl = session.is_deadlock_free()
        brute = (brute_force_acyclic(graph.edges(),
                                     max_vertices=max_brute_vertices)
                 if brute_force else None)
        edge_count = graph.edge_count

    if cdcl != explicit:
        disagreements.append(
            f"cdcl-vs-explicit: cdcl={cdcl} explicit={explicit}")
    if brute is not None and brute != explicit:
        disagreements.append(
            f"brute-vs-explicit: brute={brute} explicit={explicit}")
    return condition, cdcl, explicit, brute, edge_count, disagreements


def _simulate_instance(instance, deadlock_free: bool, index: int,
                       max_ports: int,
                       max_steps: int) -> Tuple[Optional[str], List[str]]:
    """The simulation facet: proved-free instances must drain."""
    from repro.simulation import Simulator, uniform_random_traffic

    if len(instance.topology.ports) > max_ports:
        return None, []
    workload = uniform_random_traffic(instance, num_messages=8, num_flits=3,
                                      seed=2010 + index)
    result = Simulator(instance, max_steps=max_steps).run(workload)
    genoc = result.genoc_result
    outcome = "deadlocked" if genoc.deadlocked else (
        "evacuated" if genoc.evacuated else "timeout")
    disagreements: List[str] = []
    if deadlock_free and genoc.deadlocked:
        disagreements.append(
            f"sim-vs-verdict: proved deadlock-free but workload "
            f"{workload.name} deadlocked")
    return outcome, disagreements


def run_fuzz_campaign(count: int = 200,
                      max_size: Tuple[int, int] = (3, 3),
                      campaign_seed: int = 2010,
                      brute_force: bool = True,
                      simulate: bool = True,
                      max_brute_vertices: int = 400,
                      sim_max_ports: int = 350,
                      sim_max_steps: int = 2000,
                      progress: Optional[Callable[[str], None]] = None
                      ) -> FuzzReport:
    """Fuzz ``count`` randomized instances and cross-validate every verdict.

    Builds each seeded spec from :func:`generate_fuzz_specs`, decides it
    with the CDCL session, the explicit graph algorithms and (while the
    graph is small enough) the brute-force sweep, then -- for simulable
    sizes -- runs a seeded random workload through the GeNoC engine.  Any
    disagreement is collected into the report (:attr:`FuzzReport.ok`);
    nothing raises, so a CI lane can print the full summary before
    failing.
    """
    start = time.perf_counter()
    report = FuzzReport(campaign_seed=campaign_seed, max_size=max_size)
    specs = generate_fuzz_specs(count, max_size=max_size,
                                campaign_seed=campaign_seed)
    for index, spec in enumerate(specs):
        instance_start = time.perf_counter()
        instance = spec.build()
        condition, cdcl, explicit, brute, edge_count, disagreements = \
            _decide_instance(instance, brute_force, max_brute_vertices)
        sim_outcome: Optional[str] = None
        if simulate:
            sim_outcome, sim_disagreements = _simulate_instance(
                instance, deadlock_free=cdcl and explicit, index=index,
                max_ports=sim_max_ports, max_steps=sim_max_steps)
            disagreements.extend(sim_disagreements)
        verdict = FuzzVerdict(
            scenario=spec.scenario_name(),
            instance=instance.name,
            condition=condition,
            deadlock_free=cdcl,
            cdcl_free=cdcl,
            explicit_free=explicit,
            brute_free=brute,
            edges=edge_count,
            sim_outcome=sim_outcome,
            disagreements=disagreements,
            elapsed_seconds=time.perf_counter() - instance_start,
            spec=spec.to_dict(),
        )
        report.verdicts.append(verdict)
        if progress is not None:
            status = "ok" if verdict.ok else "DISAGREE"
            progress(f"[{index + 1}/{len(specs)}] {verdict.scenario}: "
                     f"{'free' if verdict.deadlock_free else 'prone'} "
                     f"({status})")
    report.elapsed_seconds = time.perf_counter() - start
    return report
