"""The deadlock predicate ``Ω`` and deadlock-configuration analysis.

A deadlock-configuration (paper Section III-B) is a configuration in which
no message can make progress.  The predicate itself is delegated to the
switching policy (:meth:`repro.core.constituents.SwitchingPolicy.can_progress`);
this module adds the analysis used by the *necessity* direction of
Theorem 1: from a deadlock configuration, extract the set ``P`` of
unavailable ports, show that the next hop of every blocked message lies in
``P`` and derive a cycle among the ports of ``P``.

:class:`DeadlockQuerySession` is the incremental counterpart: the
dependency-edge universe of an instance is SAT-encoded **once** (one
selector variable per edge, see
:class:`repro.checking.incremental.AcyclicityOracle`) and every subsequent
deadlock question -- the full Theorem 1 condition, the condition restricted
to a port subset ``P'``, the condition after removing candidate escape
edges -- is a single solve under assumptions on the same solver, reusing
everything learned by earlier queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.configuration import Configuration, NOT_INJECTED
from repro.core.constituents import SwitchingPolicy
from repro.network.port import Port


def is_deadlock(config: Configuration, switching: SwitchingPolicy) -> bool:
    """``Ω(σ)``: there are pending messages and none of them can progress."""
    if config.is_finished():
        return False
    return not switching.can_progress(config)


@dataclass
class BlockedMessage:
    """A pending message that cannot currently advance.

    ``current`` is the port holding its header flit (or ``None`` if the
    header has not been injected yet) and ``wanted`` the port it needs next.
    """

    travel_id: int
    current: Optional[Port]
    wanted: Optional[Port]


@dataclass
class DeadlockAnalysis:
    """Result of analysing a (potential) deadlock configuration."""

    is_deadlock: bool
    blocked: List[BlockedMessage] = field(default_factory=list)
    unavailable_ports: List[Port] = field(default_factory=list)
    #: The "knot" edges: for every blocked message holding port ``p`` and
    #: wanting port ``q``, the pair ``(p, q)``.
    wait_edges: List[Tuple[Port, Port]] = field(default_factory=list)
    cycle: Optional[List[Port]] = None

    @property
    def has_cycle(self) -> bool:
        return bool(self.cycle)


def analyse_deadlock(config: Configuration,
                     switching: SwitchingPolicy) -> DeadlockAnalysis:
    """Analyse ``config`` and, if it is deadlocked, extract a wait-for cycle.

    The construction mirrors the necessity proof of Theorem 1 (Section
    IV-A): the witness set is the set of unavailable ports; for each blocked
    message holding port ``p`` and needing port ``q``, ``q`` must be
    unavailable (otherwise the message could move, contradicting the
    deadlock), so every vertex of the wait-for graph restricted to
    unavailable ports has an outgoing edge, and any finite graph in which
    every vertex has a successor contains a cycle.
    """
    deadlocked = is_deadlock(config, switching)
    analysis = DeadlockAnalysis(is_deadlock=deadlocked)
    if not deadlocked:
        return analysis

    analysis.unavailable_ports = config.state.unavailable_ports()
    unavailable: Set[Port] = set(analysis.unavailable_ports)

    # Build the successor map of the paper's necessity argument: for every
    # blocked message, the ports its worm occupies form a path along its
    # route (all of them unavailable), and the header's next hop -- also
    # unavailable, otherwise the message could move -- continues the path
    # into the worm of another message.  Every dependency edge of this map is
    # an edge of the port dependency graph (by obligation (C-1)), so a cycle
    # in it is a cycle of the dependency graph.
    successor: Dict[Port, Port] = {}
    for travel in config.travels:
        record = config.progress.get(travel.travel_id)
        if record is None:
            continue
        head = record.header_position
        route = record.route
        if head == record.ejected_position:
            continue
        if head == NOT_INJECTED:
            wanted = route[0]
            current = None
        elif head == len(route) - 1:
            # Header at the destination: ejection is always possible, so this
            # message cannot be part of a deadlock knot.
            continue
        else:
            current = route[head]
            wanted = route[head + 1]
        analysis.blocked.append(
            BlockedMessage(travel_id=travel.travel_id, current=current,
                           wanted=wanted))
        if current is None or wanted is None:
            continue
        analysis.wait_edges.append((current, wanted))
        occupied = record.occupied_route_indices()
        for earlier, later in zip(occupied, occupied[1:]):
            if later == earlier + 1:
                source, target = route[earlier], route[later]
                if source in unavailable and target in unavailable:
                    successor.setdefault(source, target)
        if current in unavailable and wanted in unavailable:
            successor.setdefault(current, wanted)

    analysis.cycle = _find_cycle_in_functional_graph(successor)
    return analysis


def _find_cycle_in_functional_graph(successor: Dict[Port, Port]
                                    ) -> Optional[List[Port]]:
    """Find a cycle in a graph where each vertex has at most one successor.

    In a deadlock, every unavailable port holding a blocked header has an
    unavailable successor, so following successors from any such port must
    eventually revisit a port (the graph is finite).  Returns the cycle as a
    list of ports (without repeating the first port at the end), or ``None``
    if the graph has no cycle.
    """
    visited_globally: Set[Port] = set()
    for start in successor:
        if start in visited_globally:
            continue
        path: List[Port] = []
        index_of: Dict[Port, int] = {}
        current: Optional[Port] = start
        while current is not None and current not in visited_globally:
            if current in index_of:
                return path[index_of[current]:]
            index_of[current] = len(path)
            path.append(current)
            current = successor.get(current)
        visited_globally.update(path)
    return None


class DeadlockQuerySession:
    """Incremental Theorem 1 queries over one dependency-edge universe.

    Built once from a dependency graph (declared or routing-induced), the
    session answers any number of deadlock-freedom questions through the
    same live CDCL solver:

    * :meth:`is_deadlock_free` -- the Theorem 1 condition itself;
    * :meth:`is_deadlock_free_for` -- the condition restricted to a port
      subset ``P'`` (obligation (C-3)'s literal ``∀ P' ⊆ P`` quantifier);
    * :meth:`is_deadlock_free_without` -- the condition after removing
      candidate escape edges;
    * :meth:`cycle_core` -- an UNSAT-core-derived edge subset that already
      contains a dependency cycle;
    * :meth:`escape_edges` -- the single-edge removals that would break
      every cycle.

    Every query is one ``solve`` under assumptions; learned clauses are
    shared, so related queries get cheaper as the session ages.
    """

    def __init__(self, graph, name: str = "dependency graph",
                 seed: int = 2010, trace=None) -> None:
        from repro.checking.incremental import AcyclicityOracle

        self.name = name
        self._oracle = AcyclicityOracle(graph, seed=seed, trace=trace)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def for_instance(cls, instance) -> "DeadlockQuerySession":
        """A session over the instance's declared dependency graph.

        Falls back to the routing-induced graph when the instance declares
        none (the deliberately deadlock-prone baselines).
        """
        if instance.dependency_spec is not None:
            return cls(instance.dependency_spec.to_graph(),
                       name=f"{instance.name} (declared)")
        return cls.for_routing(instance.routing, name=instance.name)

    @classmethod
    def for_routing(cls, routing,
                    name: Optional[str] = None) -> "DeadlockQuerySession":
        """A session over the routing-induced dependency graph."""
        from repro.core.dependency import routing_dependency_graph

        graph = routing_dependency_graph(routing)
        return cls(graph, name=name or f"{routing.name()} (induced)")

    # -- introspection --------------------------------------------------------
    @property
    def edges(self) -> List[Tuple[Port, Port]]:
        return self._oracle.edges

    @property
    def edge_count(self) -> int:
        return len(self._oracle.edges)

    @property
    def queries(self) -> int:
        return self._oracle.stats_queries

    @property
    def solver_stats(self) -> Dict[str, int]:
        return self._oracle.solver_stats

    def set_interrupt(self, callback) -> None:
        """Install (or clear with ``None``) a cooperative solve budget.

        The portfolio driver uses this to enforce per-group deadlines on
        the serial path: ``callback`` returning a truthy reason makes the
        next (or the running) query raise
        :class:`~repro.checking.sat.SolverTimeout`, with the session left
        reusable.
        """
        self._oracle.set_interrupt(callback)

    # -- growing the universe -------------------------------------------------
    def add_edge(self, source: Port, target: Port) -> None:
        """Add a dependency edge to the universe (idempotent).

        Used by the portfolio driver to merge several routing functions'
        dependency graphs into one shared encoding.
        """
        self._oracle.add_edge(source, target)

    def has_edge(self, source: Port, target: Port) -> bool:
        return self._oracle.has_edge(source, target)

    # -- queries --------------------------------------------------------------
    def is_deadlock_free(self) -> bool:
        """Theorem 1 condition: the dependency graph has no cycle."""
        return self._oracle.is_acyclic()

    def is_deadlock_free_edges(
            self, edges: Iterable[Tuple[Port, Port]]) -> bool:
        """The condition on an explicit edge subset of the universe."""
        return self._oracle.is_acyclic(edges)

    def cycle_core_for(self, edges: Iterable[Tuple[Port, Port]]
                       ) -> Optional[List[Tuple[Port, Port]]]:
        """Cycle-witness core for an explicit edge subset."""
        return self._oracle.cycle_core(edges)

    def is_deadlock_free_for(self, ports: Iterable[Port]) -> bool:
        """The condition restricted to the subgraph induced by ``ports``."""
        return self._oracle.is_acyclic_restricted_to(ports)

    # -- VC-class restrictions ------------------------------------------------
    def class_edges(self, vc_classes: Iterable[int]
                    ) -> List[Tuple[Port, Port]]:
        """The universe edges lying inside the given VC classes.

        Plain ports count as VC 0 (the degenerate single-channel case), so
        on a port-vertex universe ``class_edges({0})`` is the whole
        universe.
        """
        from repro.network.vc import vc_of

        classes = set(vc_classes)
        return self._oracle.edges_where(
            lambda vertex: vc_of(vertex) in classes)

    def is_deadlock_free_for_class(self,
                                   vc_classes: Iterable[int]) -> bool:
        """The condition restricted to one VC class of the universe.

        The per-VC-class analogue of the port-subset restriction
        :meth:`is_deadlock_free_for`: restricted to the escape class this is
        exactly the acyclicity half of the Duato-style VC deadlock
        condition (obligation (V-2)), answered by one incremental solve.
        """
        from repro.network.vc import vc_of

        classes = set(vc_classes)
        return self._oracle.is_acyclic_where(
            lambda vertex: vc_of(vertex) in classes)

    def cycle_core_for_class(self, vc_classes: Iterable[int]
                             ) -> Optional[List[Tuple[Port, Port]]]:
        """Cycle-witness core of one VC class (``None`` when acyclic)."""
        return self._oracle.cycle_core(self.class_edges(vc_classes))

    def is_deadlock_free_without(
            self, removed: Iterable[Tuple[Port, Port]]) -> bool:
        """The condition on the universe minus the given (escape) edges."""
        return self._oracle.is_acyclic_without(removed)

    def cycle_core(self) -> Optional[List[Tuple[Port, Port]]]:
        """An edge subset that already contains a cycle (``None`` if acyclic)."""
        return self._oracle.cycle_core()

    def escape_edges(self,
                     candidates: Optional[Iterable[Tuple[Port, Port]]] = None
                     ) -> List[Tuple[Port, Port]]:
        """Edges whose individual removal restores deadlock freedom.

        When ``candidates`` is ``None`` the UNSAT core is used as the
        candidate pool (an edge outside every cycle can never help), keeping
        the number of incremental solves proportional to the cycle, not to
        the graph.
        """
        if candidates is None:
            candidates = self.cycle_core() or []
        return self._oracle.critical_edges(candidates)

    def numbering(self) -> Dict[Port, int]:
        """A topological numbering witnessing deadlock freedom."""
        return self._oracle.numbering()


def count_blocked_messages(config: Configuration,
                           switching: SwitchingPolicy) -> int:
    """Number of pending messages that cannot advance right now.

    Unlike :func:`is_deadlock`, this is meaningful for non-deadlocked
    configurations too and is used by the simulation metrics (a congestion
    indicator).
    """
    analysis_total = 0
    for travel in config.travels:
        record = config.progress.get(travel.travel_id)
        if record is None:
            continue
        if not _can_travel_progress(config, record):
            analysis_total += 1
    return analysis_total


def _can_travel_progress(config: Configuration, record) -> bool:
    """Can the header of the given travel move (inject, advance or eject)?"""
    head = record.header_position
    route = record.route
    if head == record.ejected_position:
        return True
    if head == len(route) - 1:
        return True
    if head == NOT_INJECTED:
        target = route[0]
    else:
        target = route[head + 1]
    return config.state.accepts(target, record.travel.travel_id)
