"""Declarative scenario specifications: the one construction path.

The portfolio driver sweeps topology x routing x switching scenarios, yet
historically every scenario was hand-built Python: ``hermes``, ``ringnoc``
and ``vcnoc`` each exposed bespoke ``build_*`` functions and the sweep
lists called them directly, so growing the sweep meant editing code in
three places and shipping fully pickled instances to pool workers.  This
module replaces that with three declarative layers:

* :class:`ScenarioSpec` -- a frozen, JSON-serialisable description of one
  scenario (topology kind + dims, routing policy, switching discipline,
  VC count, escape style, route-commit policy, buffer/injection/measure
  options) with an exact ``to_dict()``/``from_dict()`` round trip.  Specs
  are hashable, picklable and *cheap*: a portfolio worker receives specs
  and resolves them lazily through the per-process
  :class:`~repro.core.cache.InstanceCache`.
* :class:`SpecRegistry` -- named :class:`InstanceBuilder` entries, one per
  topology kind.  The instantiation packages (:mod:`repro.hermes`,
  :mod:`repro.ringnoc`, :mod:`repro.vcnoc`) register their builders here,
  so ``ScenarioSpec.build()`` is the single construction path every
  consumer (portfolio, CLI, benchmarks, future workloads) goes through.
* :func:`expand_matrix` -- a deterministic generator turning parameter
  grids (``"mesh:2..4x2..4, routing=[xy,yx], switching=wormhole"``) into
  ordered scenario matrices.  Same grid, same spec list -- always.

The matrix grammar (see ``docs/scenarios.md`` for the full reference)::

    matrix  :=  term (';' term)*
    term    :=  kind ':' dims (',' param)*
    dims    :=  dimterm ('|' dimterm)*        -- alternatives, in order
    dimterm :=  range ('x' range)*            -- per-axis, cross product
    range   :=  INT | INT '..' INT            -- inclusive, ascending
    param   :=  key '=' values                -- routing=, switching=,
                                              -- vcs=, buffers=, policy=,
                                              -- escape=, faults=, seed=,
                                              -- group=
    values  :=  value | INT '..' INT | '[' value (',' value)* ']'

Expansion order is pinned: terms left to right; within a term dims vary
outermost (alternatives in order, per-axis ranges ascending, leftmost axis
slowest), then ``routing``, ``switching``, ``vcs``, ``buffers``,
``policy``, ``escape``, ``faults`` and ``seed`` values in declaration
order, innermost last.  ``faults``/``seed`` select the deterministic
fault model of :mod:`repro.network.faults` (``seed`` is ignored -- and
normalised to 0 -- when ``faults`` is 0, so fault-free rows of a sweep
collapse onto the healthy construction path).
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field, fields, replace
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.errors import SpecificationError

#: Switching-discipline tokens accepted by port-level scenario kinds.
SWITCHING_TOKENS = ("wormhole", "vct", "saf")

#: Route-commit policies of the VC escape relation (mirrors
#: :data:`repro.routing.escape.ROUTE_POLICIES`).
ROUTE_POLICY_TOKENS = ("escape", "adaptive", "spread")

#: Injection-method tokens (the paper's immediate injection only, today).
INJECTION_TOKENS = ("iid",)

#: Termination-measure tokens (see :mod:`repro.core.measure`).
MEASURE_TOKENS = ("flit-hop", "pending", "route-length")


def resolve_switching(token: Optional[str]):
    """The switching policy named by ``token`` (``None`` = wormhole)."""
    from repro.switching.store_and_forward import StoreAndForwardSwitching
    from repro.switching.virtual_cut_through import VirtualCutThroughSwitching
    from repro.switching.wormhole import WormholeSwitching

    policies = {"wormhole": WormholeSwitching,
                "vct": VirtualCutThroughSwitching,
                "saf": StoreAndForwardSwitching}
    if token is None:
        token = "wormhole"
    if token not in policies:
        raise SpecificationError(
            f"unknown switching token {token!r}; "
            f"expected one of {SWITCHING_TOKENS}")
    return policies[token]()


def resolve_measure(token: str):
    """The termination measure named by ``token``."""
    from repro.core.measure import (
        flit_hop_measure,
        pending_travel_measure,
        route_length_measure,
    )

    measures = {"flit-hop": flit_hop_measure,
                "pending": pending_travel_measure,
                "route-length": route_length_measure}
    if token not in measures:
        raise SpecificationError(
            f"unknown measure token {token!r}; "
            f"expected one of {MEASURE_TOKENS}")
    return measures[token]


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative, JSON-serialisable description of one scenario.

    ``kind`` names a :class:`SpecRegistry` builder entry (``"mesh"``,
    ``"ring"``, ``"vc-mesh"``, ``"vc-torus"``, ``"vc-ring"``) and ``dims``
    are the topology dimensions that entry expects (``(width, height)``
    for 2D kinds, ``(size,)`` for rings).  The remaining fields select the
    constituents; ``None`` means "the kind's default" and is filled in by
    :meth:`normalized`.  Specs are frozen and hashable, so they double as
    construction-cache keys, and they contain only primitives, so they
    pickle cheaply to portfolio worker processes.
    """

    kind: str
    dims: Tuple[int, ...]
    #: Routing-policy token of the kind (e.g. ``"xy"``, ``"adaptive"``,
    #: ``"chain"``); ``None`` selects the kind's default.
    routing: Optional[str] = None
    #: Switching-discipline token (:data:`SWITCHING_TOKENS`); ``None``
    #: selects the kind's default.  VC kinds fix their own switching.
    switching: Optional[str] = None
    #: Virtual channels per cardinal port (1 = the paper's port model).
    num_vcs: int = 1
    #: Escape-class style of a VC kind (``"xy"`` or ``"dateline"``);
    #: ``None`` selects the kind's natural style.
    escape: Optional[str] = None
    #: How concrete simulation routes are committed on a VC relation.
    route_policy: str = "escape"
    #: 1-flit buffers per port.
    buffers: int = 2
    injection: str = "iid"
    measure: str = "flit-hop"
    #: Number of injected faults (dead links/routers); 0 = healthy fabric.
    faults: int = 0
    #: Seed of the deterministic fault draw (ignored when ``faults`` is 0).
    fault_seed: int = 0
    #: Explicit scenario-name override (``None``: derived from the spec).
    label: Optional[str] = None
    #: Explicit session-group override (``None``: derived from the spec).
    group: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "dims", tuple(int(d) for d in self.dims))

    # -- serialisation ------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The exact JSON-serialisable image of this spec (all fields)."""
        return {
            "kind": self.kind,
            "dims": list(self.dims),
            "routing": self.routing,
            "switching": self.switching,
            "num_vcs": self.num_vcs,
            "escape": self.escape,
            "route_policy": self.route_policy,
            "buffers": self.buffers,
            "injection": self.injection,
            "measure": self.measure,
            "faults": self.faults,
            "fault_seed": self.fault_seed,
            "label": self.label,
            "group": self.group,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (exact round trip)."""
        if not isinstance(payload, dict):
            raise SpecificationError(
                f"a spec dict is required, got {type(payload).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise SpecificationError(
                f"unknown spec fields {sorted(unknown)}; known: "
                f"{sorted(known)}")
        for required in ("kind", "dims"):
            if required not in payload:
                raise SpecificationError(f"spec dict misses {required!r}")
        data = dict(payload)
        data["dims"] = tuple(data["dims"])
        return cls(**data)

    def canonical_hash(self) -> str:
        """The canonical content hash of this spec (a hex SHA-256).

        Computed over the *normalized* spec's sorted-key JSON image, so
        two spellings of the same scenario (defaults written out or left
        implicit) hash identically.  Together with
        ``repro.__engine_fingerprint__`` this is the key of the
        checkpoint journal (:mod:`repro.core.checkpoint`) and the future
        content-addressed verdict store: same hash + same engine =
        the verdict may be reused verbatim.
        """
        import hashlib
        import json

        payload = json.dumps(self.normalized().to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- identity -----------------------------------------------------------------
    def dims_text(self) -> str:
        return "x".join(str(d) for d in self.dims)

    def group_key(self) -> str:
        """The portfolio session group this scenario belongs to.

        Scenarios of one group share one incremental solver session, so
        the default groups by topology kind and dimensions -- every VC
        count of one topology lands in one group (their channel universes
        nest) and shard assignment can stay group-stable.
        """
        if self.group is not None:
            return self.group
        return f"{self.kind}-{self.dims_text()}"

    def scenario_name(self) -> str:
        """The display name of this scenario (stable across sessions)."""
        if self.label is not None:
            return self.label
        return spec_registry().entry(self.kind).name_for(self.normalized())

    # -- construction -------------------------------------------------------------
    def normalized(self) -> "ScenarioSpec":
        """This spec with the kind's defaults filled in (and validated)."""
        entry = spec_registry().entry(self.kind)
        spec = entry.normalize(self)
        entry.validate(spec)
        return spec

    def build(self):
        """Construct the :class:`~repro.core.instance.NoCInstance`.

        The single construction path: dispatches through the registered
        :class:`InstanceBuilder` of :attr:`kind`.  Prefer
        :meth:`repro.core.cache.InstanceCache.instance_for` when the same
        spec may be built repeatedly in one process.
        """
        spec = self.normalized()
        return spec_registry().entry(spec.kind).builder(spec)


def fault_suffix(spec: ScenarioSpec) -> str:
    """The scenario-name suffix of a fault-injected spec (empty if healthy).

    Used by every namer so fault variants of one design get distinct,
    stable scenario names (e.g. ``.../f2s1``).
    """
    if spec.faults <= 0:
        return ""
    return f"/f{spec.faults}s{spec.fault_seed}"


#: An :class:`InstanceBuilder` turns a normalized spec into an instance.
InstanceBuilder = Callable[[ScenarioSpec], object]


@dataclass(frozen=True)
class BuilderEntry:
    """One registered scenario kind: its builder plus its parameter space."""

    kind: str
    builder: InstanceBuilder
    description: str
    #: Number of topology dimensions the kind expects (2 for meshes/tori,
    #: 1 for rings).
    dim_count: int
    #: Supported routing tokens (empty: the kind has a fixed relation and
    #: accepts no routing token).
    routings: Tuple[str, ...] = ()
    default_routing: Optional[str] = None
    #: Supported switching tokens (empty: fixed by the kind).
    switchings: Tuple[str, ...] = ()
    default_switching: Optional[str] = None
    #: Does the kind model virtual channels (``num_vcs`` may exceed 1)?
    supports_vcs: bool = False
    #: The escape style of a VC kind (``None`` for port-level kinds).
    escape_style: Optional[str] = None
    #: Does the kind accept ``faults > 0`` (a fault-aware builder path)?
    supports_faults: bool = False
    #: Scenario-name deriver; receives a normalized spec.
    namer: Optional[Callable[[ScenarioSpec], str]] = None

    def normalize(self, spec: ScenarioSpec) -> ScenarioSpec:
        """Fill the kind's defaults into ``spec`` (idempotent).

        Also canonicalises underscore routing aliases (``west_first`` ->
        ``west-first``) and normalises the fault seed of a healthy spec to
        0, so ``faults=0, seed=0..n`` sweep rows collapse onto one spec.
        """
        updates: Dict[str, object] = {}
        if spec.routing is None and self.default_routing is not None:
            updates["routing"] = self.default_routing
        elif (spec.routing is not None and spec.routing not in self.routings
                and spec.routing.replace("_", "-") in self.routings):
            updates["routing"] = spec.routing.replace("_", "-")
        if spec.switching is None and self.default_switching is not None:
            updates["switching"] = self.default_switching
        if spec.escape is None and self.escape_style is not None:
            updates["escape"] = self.escape_style
        if spec.faults == 0 and spec.fault_seed != 0:
            updates["fault_seed"] = 0
        return replace(spec, **updates) if updates else spec

    def validate(self, spec: ScenarioSpec) -> None:
        """Raise :class:`SpecificationError` on an out-of-space spec."""
        def fail(message: str) -> None:
            raise SpecificationError(f"spec {spec.kind}:{spec.dims_text()} "
                                     f"invalid: {message}")

        if len(spec.dims) != self.dim_count:
            fail(f"kind {self.kind!r} expects {self.dim_count} "
                 f"dimension(s), got {len(spec.dims)}")
        if any(d < 1 for d in spec.dims):
            fail("dimensions must be positive")
        if self.routings and spec.routing not in self.routings:
            fail(f"routing {spec.routing!r} not supported; expected one of "
                 f"{list(self.routings)}")
        if not self.routings and spec.routing is not None:
            fail(f"kind {self.kind!r} has a fixed routing relation and "
                 f"accepts no routing token")
        if self.switchings and spec.switching not in self.switchings:
            fail(f"switching {spec.switching!r} not supported; expected one "
                 f"of {list(self.switchings)}")
        if not self.switchings and spec.switching is not None:
            fail(f"kind {self.kind!r} fixes its switching policy")
        if spec.num_vcs < 1:
            fail("num_vcs must be at least 1")
        if not self.supports_vcs and spec.num_vcs != 1:
            fail(f"kind {self.kind!r} is a port-level model; use a vc-* "
                 f"kind for num_vcs > 1")
        if self.escape_style is None and spec.escape is not None:
            fail(f"kind {self.kind!r} has no escape class")
        if (self.escape_style is not None and spec.escape is not None
                and spec.escape != self.escape_style):
            fail(f"kind {self.kind!r} uses the {self.escape_style!r} escape "
                 f"style, not {spec.escape!r}")
        if spec.route_policy not in ROUTE_POLICY_TOKENS:
            fail(f"route_policy must be one of {ROUTE_POLICY_TOKENS}")
        if spec.buffers < 1:
            fail("buffers must be at least 1")
        if spec.injection not in INJECTION_TOKENS:
            fail(f"injection must be one of {INJECTION_TOKENS}")
        if spec.measure not in MEASURE_TOKENS:
            fail(f"measure must be one of {MEASURE_TOKENS}")
        if spec.faults < 0:
            fail("faults must be non-negative")
        if spec.fault_seed < 0:
            fail("fault seed must be non-negative")
        if spec.faults > 0 and not self.supports_faults:
            fail(f"kind {self.kind!r} has no fault-aware builder path")

    def name_for(self, spec: ScenarioSpec) -> str:
        if self.namer is not None:
            return self.namer(spec)
        parts = [spec.group_key()]
        if spec.routing:
            parts.append(f"R{spec.routing}")
        if spec.num_vcs > 1:
            parts.append(f"{spec.num_vcs}vc")
        return "/".join(parts) + fault_suffix(spec)


class SpecRegistry:
    """The named builder entries, keyed by scenario kind.

    One registry serves the process (:func:`spec_registry`); the
    instantiation packages populate it at import time via
    :func:`register_builder`.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, BuilderEntry] = {}

    def register(self, entry: BuilderEntry) -> BuilderEntry:
        if entry.kind in self._entries:
            raise SpecificationError(
                f"scenario kind {entry.kind!r} is already registered")
        self._entries[entry.kind] = entry
        return entry

    def entry(self, kind: str) -> BuilderEntry:
        try:
            return self._entries[kind]
        except KeyError:
            raise SpecificationError(
                f"unknown scenario kind {kind!r}; registered kinds: "
                f"{sorted(self._entries)}") from None

    def kinds(self) -> List[str]:
        return list(self._entries)

    def entries(self) -> List[BuilderEntry]:
        return list(self._entries.values())


_REGISTRY = SpecRegistry()
_BUILDERS_LOADED = False


def register_builder(kind: str, builder: InstanceBuilder, *,
                     description: str = "",
                     dim_count: int = 2,
                     routings: Sequence[str] = (),
                     default_routing: Optional[str] = None,
                     switchings: Sequence[str] = (),
                     default_switching: Optional[str] = None,
                     supports_vcs: bool = False,
                     escape_style: Optional[str] = None,
                     supports_faults: bool = False,
                     namer: Optional[Callable[[ScenarioSpec], str]] = None,
                     ) -> BuilderEntry:
    """Register an :class:`InstanceBuilder` for a scenario kind.

    Called at import time by the instantiation packages; the entry
    describes the kind's parameter space so matrix expansion can validate
    grids eagerly and ``repro scenarios list`` can document what exists.
    """
    return _REGISTRY.register(BuilderEntry(
        kind=kind, builder=builder, description=description,
        dim_count=dim_count, routings=tuple(routings),
        default_routing=default_routing, switchings=tuple(switchings),
        default_switching=default_switching, supports_vcs=supports_vcs,
        escape_style=escape_style, supports_faults=supports_faults,
        namer=namer))


def _ensure_builders() -> None:
    """Import the instantiation packages so their kinds are registered.

    The loaded flag is only latched once every import succeeded, so a
    transient import failure surfaces again on the next call instead of
    leaving a silently half-populated registry.  Re-running the imports
    is safe: already-imported modules are no-ops, and registration raises
    on duplicates only when a module body actually re-executes.
    """
    global _BUILDERS_LOADED
    if _BUILDERS_LOADED:
        return
    import repro.hermes.instantiation  # noqa: F401  (registers "mesh")
    import repro.ringnoc.instantiation  # noqa: F401  (registers "ring")
    import repro.vcnoc  # noqa: F401  (registers the vc-* kinds)
    _BUILDERS_LOADED = True


def spec_registry() -> SpecRegistry:
    """The process-wide registry, with every shipped kind registered."""
    _ensure_builders()
    return _REGISTRY


# ---------------------------------------------------------------------------
# Matrix expansion
# ---------------------------------------------------------------------------

_TERM_RE = re.compile(r"^\s*(?P<kind>[A-Za-z][A-Za-z0-9_-]*)\s*:\s*"
                      r"(?P<rest>\S.*)$")
_RANGE_RE = re.compile(r"^(\d+)\.\.(\d+)$")

#: Parameter keys of the matrix grammar, in expansion-nesting order
#: (``routing`` varies slowest after dims, ``seed`` fastest).
_PARAM_KEYS = ("routing", "switching", "vcs", "buffers", "policy", "escape",
               "faults", "seed")
_INT_KEYS = frozenset({"vcs", "buffers", "faults", "seed"})


def _split_top_level(text: str, separator: str) -> List[str]:
    """Split on ``separator`` outside ``[...]`` brackets."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
            if depth < 0:
                raise SpecificationError(
                    f"unbalanced ']' in matrix fragment {text!r}")
        if char == separator and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise SpecificationError(
            f"unbalanced '[' in matrix fragment {text!r}")
    parts.append("".join(current))
    return [part.strip() for part in parts if part.strip()]


def _expand_range(text: str, *, context: str) -> List[int]:
    match = _RANGE_RE.match(text)
    if match:
        low, high = int(match.group(1)), int(match.group(2))
        if low > high:
            raise SpecificationError(
                f"empty range {text!r} in {context}: {low} > {high}")
        return list(range(low, high + 1))
    if text.isdigit():
        return [int(text)]
    raise SpecificationError(
        f"expected an integer or INT..INT range in {context}, got {text!r}")


def _expand_dims(text: str, *, context: str) -> List[Tuple[int, ...]]:
    """``"2..3x2..3|5x5"`` -> the ordered dimension tuples."""
    dims: List[Tuple[int, ...]] = []
    for alternative in text.split("|"):
        alternative = alternative.strip()
        if not alternative:
            raise SpecificationError(f"empty dims alternative in {context}")
        axes = [_expand_range(axis.strip(), context=context)
                for axis in alternative.split("x")]
        dims.extend(itertools.product(*axes))
    return dims


def _parse_values(key: str, text: str, *, context: str) -> List[object]:
    if text.startswith("["):
        if not text.endswith("]"):
            raise SpecificationError(
                f"unterminated value list for {key!r} in {context}")
        tokens = [token.strip() for token in text[1:-1].split(",")]
        tokens = [token for token in tokens if token]
        if not tokens:
            raise SpecificationError(
                f"empty value list for {key!r} in {context}")
    elif key in _INT_KEYS and (_RANGE_RE.match(text) or text.isdigit()):
        return list(_expand_range(text, context=context))
    else:
        tokens = [text]
    if key in _INT_KEYS:
        values: List[object] = []
        for token in tokens:
            values.extend(_expand_range(token, context=context))
        return values
    return list(tokens)


def _expand_term(term: str) -> List[ScenarioSpec]:
    match = _TERM_RE.match(term)
    if not match:
        raise SpecificationError(
            f"matrix term {term!r} does not match 'kind: dims, key=value, "
            f"...'")
    kind = match.group("kind")
    parts = _split_top_level(match.group("rest"), ",")
    if not parts:
        raise SpecificationError(f"matrix term {term!r} misses dimensions")
    dims_list = _expand_dims(parts[0], context=f"term {term!r}")

    params: Dict[str, List[object]] = {}
    group: Optional[str] = None
    for part in parts[1:]:
        key, equals, value = part.partition("=")
        key, value = key.strip(), value.strip()
        if not equals or not value:
            raise SpecificationError(
                f"expected key=value in matrix term {term!r}, got {part!r}")
        if key == "group":
            group = value
            continue
        if key not in _PARAM_KEYS:
            raise SpecificationError(
                f"unknown matrix key {key!r} in term {term!r}; known keys: "
                f"{list(_PARAM_KEYS) + ['group']}")
        if key in params:
            raise SpecificationError(
                f"duplicate matrix key {key!r} in term {term!r}")
        params[key] = _parse_values(key, value, context=f"term {term!r}")

    registry = spec_registry()
    entry = registry.entry(kind)
    specs: List[ScenarioSpec] = []
    axes = [params.get(key, [None]) for key in _PARAM_KEYS]
    for dims in dims_list:
        for routing, switching, vcs, buffers, policy, escape, faults, seed \
                in itertools.product(*axes):
            spec = ScenarioSpec(
                kind=kind, dims=dims, routing=routing, switching=switching,
                num_vcs=1 if vcs is None else vcs, escape=escape,
                route_policy="escape" if policy is None else policy,
                buffers=2 if buffers is None else buffers,
                faults=0 if faults is None else faults,
                fault_seed=0 if seed is None else seed, group=group)
            spec = entry.normalize(spec)
            entry.validate(spec)
            specs.append(spec)
    return specs


def expand_matrix(matrix: Union[str, Iterable[str]]) -> List[ScenarioSpec]:
    """Expand a matrix expression into its ordered, validated spec list.

    ``matrix`` is one expression or a sequence of expressions; each may
    hold several ``;``-separated terms.  Expansion is deterministic: the
    same grid always yields the same specs in the same order (terms left
    to right, dims outermost, then routing / switching / vcs / buffers /
    policy / escape / faults / seed in declaration order).  Invalid grids
    -- unknown
    kinds, out-of-space tokens, malformed ranges -- raise
    :class:`~repro.core.errors.SpecificationError` eagerly, before
    anything is built.
    """
    sources = [matrix] if isinstance(matrix, str) else list(matrix)
    specs: List[ScenarioSpec] = []
    for source in sources:
        for term in _split_top_level(source, ";"):
            specs.extend(_expand_term(term))
    return specs
