"""Process-wide construction caches for the verification engine.

Verifying a portfolio repeats the same expensive constructions many times:
the routing-induced dependency graph of one routing function is enumerated
once for the portfolio verdict, again for the cross-check, again for the
escape analysis and again inside the theorem checkers; the ``a < b``
bit-vector constraint of an edge is rebuilt for every
:class:`~repro.checking.incremental.AcyclicityOracle` that encodes it.
:class:`InstanceCache` memoises those constructions once per key so every
later consumer -- scenarios, theorems, obligations -- reuses the first
result:

* **dependency graphs** (`routing_dependency_graph` /
  `channel_dependency_graph`), keyed by routing-function identity.  Routing
  functions are immutable after construction, so identity keying is exact;
  the values are held through weak references so discarded routings do not
  pin their graphs, and the graphs themselves are *frozen*
  (:meth:`~repro.checking.graphs.DirectedGraph.freeze`) so no consumer can
  corrupt the shared copy.
* **escape-coverage reports** ((V-1) of the VC condition), keyed the same
  way -- the portfolio driver and the VC theorem both need them.

(The numbering-constraint expression cache of earlier revisions is gone:
the oracles now emit each edge's comparison directly as clauses --
:func:`repro.checking.encodings.encode_numbering_constraint` -- so there
is no expression tree left to share.)

One cache lives per process (:func:`instance_cache`).  Portfolio worker
processes each get their own -- scenario groups are scheduled with group
affinity precisely so that a group's shared constructions stay hot inside
one worker.  :func:`reset_instance_cache` restores a cold cache (used by
benchmarks that measure construction cost honestly).
"""

from __future__ import annotations

import weakref
from typing import Dict, Optional, Tuple


class InstanceCache:
    """Keyed memoisation of the engine's pure constructions.

    The cache only stores *immutable* (or frozen) values, so a hit is
    indistinguishable from a recomputation apart from the time saved; hit
    and miss counters are exported into bench trajectories and the
    portfolio JSON report.
    """

    def __init__(self) -> None:
        # routing-function identity -> frozen DirectedGraph
        self._graphs: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        # routing-relation identity -> (V-1) coverage report
        self._coverage: "weakref.WeakKeyDictionary" = \
            weakref.WeakKeyDictionary()
        # ScenarioSpec -> NoCInstance (specs are frozen and hashable)
        self._instances: Dict[object, object] = {}
        self.hits = 0
        self.misses = 0

    # -- bookkeeping --------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "graphs": len(self._graphs),
            "coverage_reports": len(self._coverage),
            "instances": len(self._instances),
        }

    def clear(self) -> None:
        self._graphs.clear()
        self._coverage.clear()
        self._instances.clear()
        self.hits = 0
        self.misses = 0

    # -- spec-built instances -----------------------------------------------------
    def instance_for(self, spec):
        """The memoised :class:`~repro.core.instance.NoCInstance` of a spec.

        ``spec`` is a :class:`~repro.core.spec.ScenarioSpec` (frozen,
        hashable -- the key *is* the declarative description).  Portfolio
        workers receive cheap specs instead of pickled instances and
        resolve them here, so a scenario group scheduled onto one worker
        constructs each distinct design exactly once per process.

        Unlike the weak-keyed graph/coverage caches, this map holds its
        instances *strongly*: spec-backed scenarios deliberately keep no
        instance reference, so a weak entry would die before its first
        reuse.  Long-lived processes that sweep many large distinct
        designs should call :func:`reset_instance_cache` between sweeps
        (the bench runner does).
        """
        instance = self._instances.get(spec)
        if instance is not None:
            self.hits += 1
            return instance
        self.misses += 1
        instance = spec.build()
        self._instances[spec] = instance
        return instance

    # -- dependency graphs --------------------------------------------------------
    def dependency_graph(self, routing):
        """The memoised routing-induced dependency graph of ``routing``.

        Computed on first request (via the plain enumeration of
        :func:`repro.core.dependency.routing_dependency_graph`), frozen, and
        returned for every later request with the same routing object.
        """
        graph = self._graphs.get(routing)
        if graph is not None:
            self.hits += 1
            return graph
        from repro.core.dependency import routing_dependency_graph

        self.misses += 1
        graph = routing_dependency_graph(routing, cache=False).freeze()
        try:
            self._graphs[routing] = graph
        except TypeError:  # pragma: no cover - non-weakref-able routing
            pass
        return graph

    # -- (V-1) coverage -----------------------------------------------------------
    def escape_coverage(self, relation):
        """The memoised (V-1) escape-coverage report of a VC relation."""
        report = self._coverage.get(relation)
        if report is not None:
            self.hits += 1
            return report
        from repro.core.obligations import check_v1_escape_coverage

        self.misses += 1
        report = check_v1_escape_coverage(relation, cache=False)
        try:
            self._coverage[relation] = report
        except TypeError:  # pragma: no cover - non-weakref-able relation
            pass
        return report


_CACHE: Optional[InstanceCache] = None


def instance_cache() -> InstanceCache:
    """The per-process construction cache (created on first use)."""
    global _CACHE
    if _CACHE is None:
        _CACHE = InstanceCache()
    return _CACHE


def reset_instance_cache() -> InstanceCache:
    """Drop every cached construction and return the fresh, cold cache."""
    cache = instance_cache()
    cache.clear()
    return cache
