"""The proof obligations (C-1) ... (C-5) and their discharge engine.

The GeNoC methodology characterises the constituents by proof obligations;
once the obligations are discharged for an instantiation, the three global
theorems follow *without* looking at the constituent definitions again
(paper Fig. 2).  This module provides one checker per obligation, each
returning an :class:`ObligationResult` that records whether the obligation
holds, how many elementary checks were performed (the Python analogue of the
"Thms" column of Table I), the counterexamples found, and the wall-clock time
spent (the analogue of the "CPU" column).

For bounded networks the obligations are decidable and the checkers are
exact (exhaustive enumeration).  The parametric argument for (C-3) on the
HERMES mesh (the paper's flows proof, Fig. 4) is provided separately by
:mod:`repro.hermes.flows` as a rank-certificate check and is reported through
the same :class:`ObligationResult` interface.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.checking.graphs import DirectedGraph
from repro.core.configuration import Configuration
from repro.core.constituents import (
    InjectionMethod,
    RoutingFunction,
    SwitchingPolicy,
)
from repro.core.deadlock import is_deadlock
from repro.core.dependency import (
    DependencyGraphSpec,
    check_acyclicity,
    routing_dependency_graph,
)
from repro.core.errors import ObligationViolation
from repro.core.measure import Measure
from repro.core.witness import WitnessDestination
from repro.network.port import Port


@dataclass
class ObligationResult:
    """Outcome of discharging one proof obligation."""

    name: str
    holds: bool
    #: Number of elementary checks performed (case distinctions, edges
    #: examined, simulation steps verified, ...).
    checks: int = 0
    #: Human-readable descriptions of the counterexamples found (empty when
    #: the obligation holds).
    counterexamples: List[str] = field(default_factory=list)
    #: Wall-clock seconds spent discharging the obligation.
    elapsed_seconds: float = 0.0
    #: Additional details (per-method verdicts, statistics, ...).
    details: Dict[str, object] = field(default_factory=dict)

    def raise_if_violated(self) -> None:
        if not self.holds:
            summary = "; ".join(self.counterexamples[:3]) or "violated"
            raise ObligationViolation(self.name, summary)

    def __str__(self) -> str:
        status = "holds" if self.holds else "VIOLATED"
        return (f"{self.name}: {status} "
                f"({self.checks} checks, {self.elapsed_seconds:.3f}s)")


def _timed(function: Callable[[], Tuple[bool, int, List[str], Dict[str, object]]],
           name: str) -> ObligationResult:
    start = time.perf_counter()
    holds, checks, counterexamples, details = function()
    elapsed = time.perf_counter() - start
    return ObligationResult(name=name, holds=holds, checks=checks,
                            counterexamples=counterexamples,
                            elapsed_seconds=elapsed, details=details)


# ---------------------------------------------------------------------------
# (C-1): every routing hop (for reachable destinations) is a declared edge
# ---------------------------------------------------------------------------

def check_c1(routing: RoutingFunction, spec: DependencyGraphSpec,
             destinations: Optional[Sequence[Port]] = None,
             max_counterexamples: int = 10) -> ObligationResult:
    """(C-1): ``∀ s, d, p ∈ R(s, d) . s R d ⟹ (s, p) ∈ E_dep``."""

    def run() -> Tuple[bool, int, List[str], Dict[str, object]]:
        topology = routing.topology
        dests = list(destinations) if destinations is not None \
            else routing.destinations()
        checks = 0
        counterexamples: List[str] = []
        for source in topology.ports:
            declared = spec.edges_from(source)
            for destination in dests:
                if source == destination:
                    continue
                if not routing.reachable(source, destination):
                    continue
                for hop in routing.next_hops(source, destination):
                    checks += 1
                    if hop not in declared:
                        if len(counterexamples) < max_counterexamples:
                            counterexamples.append(
                                f"R({source}, {destination}) = {hop} but "
                                f"({source}, {hop}) is not a declared edge")
        return (not counterexamples, checks, counterexamples,
                {"destinations": len(dests)})

    return _timed(run, "C-1")


# ---------------------------------------------------------------------------
# (C-2): every declared edge has a witness destination
# ---------------------------------------------------------------------------

def check_c2(routing: RoutingFunction, spec: DependencyGraphSpec,
             witness_destination: Optional[WitnessDestination] = None,
             max_counterexamples: int = 10) -> ObligationResult:
    """(C-2): ``∀ (p0, p1) ∈ E_dep ∃ d . p0 R d ∧ p1 ∈ R(p0, d)``.

    When a ``witness_destination`` function is supplied (the paper's
    ``find_dest``), it is used directly and the obligation additionally
    checks that the witness it produces is correct.  Otherwise the checker
    falls back to enumerating all destinations.
    """

    def run() -> Tuple[bool, int, List[str], Dict[str, object]]:
        checks = 0
        counterexamples: List[str] = []
        used_fallback = 0
        for source, target in spec.edges():
            checks += 1
            if witness_destination is not None:
                destination = witness_destination(source, target)
                if (destination is not None
                        and routing.reachable(source, destination)
                        and target in routing.next_hops(source, destination)):
                    continue
                # The declared witness failed; fall back to enumeration so the
                # counterexample message can distinguish "no witness at all"
                # from "the find_dest witness is wrong".
            found = None
            for destination in routing.destinations():
                if source == destination:
                    continue
                if not routing.reachable(source, destination):
                    continue
                if target in routing.next_hops(source, destination):
                    found = destination
                    break
            if found is None:
                if len(counterexamples) < max_counterexamples:
                    counterexamples.append(
                        f"edge ({source}, {target}) has no witness destination")
            elif witness_destination is not None:
                used_fallback += 1
                if len(counterexamples) < max_counterexamples:
                    counterexamples.append(
                        f"find_dest gave a wrong witness for ({source}, {target}); "
                        f"enumeration found {found}")
        return (not counterexamples, checks, counterexamples,
                {"edges": checks, "fallback_witnesses": used_fallback})

    return _timed(run, "C-2")


# ---------------------------------------------------------------------------
# (C-3): the declared dependency graph has no cycle
# ---------------------------------------------------------------------------

def check_c3(spec: DependencyGraphSpec,
             methods: Sequence[str] = ("dfs", "scc", "toposort"),
             ) -> ObligationResult:
    """(C-3): ``∀ P' ⊆ P . ¬ cycle_dep(P')`` -- the graph is acyclic."""

    def run() -> Tuple[bool, int, List[str], Dict[str, object]]:
        graph = spec.to_graph()
        report = check_acyclicity(graph, methods=methods)
        counterexamples: List[str] = []
        if not report.acyclic:
            cycle = report.cycle or []
            counterexamples.append(
                "dependency cycle: " + " -> ".join(str(p) for p in cycle))
        checks = graph.edge_count * len(methods)
        details: Dict[str, object] = {
            "vertices": graph.vertex_count,
            "edges": graph.edge_count,
            "methods": dict(report.by_method),
        }
        if report.cycle:
            details["cycle"] = [str(p) for p in report.cycle]
        return (report.acyclic, checks, counterexamples, details)

    return _timed(run, "C-3")


def check_c3_incremental(spec: DependencyGraphSpec,
                         session=None) -> ObligationResult:
    """(C-3) discharged through a reusable incremental solver session.

    Equivalent to ``check_c3(spec, methods=("sat-incremental",))`` for a
    single call, but the :class:`~repro.core.deadlock.DeadlockQuerySession`
    built here (or passed in) can afterwards answer restricted-subset and
    escape-edge queries without re-encoding -- that is the point of the
    incremental route.  The session is returned in ``details["session"]``.
    """

    def run() -> Tuple[bool, int, List[str], Dict[str, object]]:
        from repro.core.deadlock import DeadlockQuerySession

        live = session if session is not None \
            else DeadlockQuerySession(spec.to_graph())
        queries_before = live.queries
        acyclic = live.is_deadlock_free()
        counterexamples: List[str] = []
        if not acyclic:
            core = live.cycle_core() or []
            counterexamples.append(
                "dependency cycle within: "
                + " , ".join(f"{s} -> {t}" for s, t in core[:8]))
        return (acyclic, live.queries - queries_before, counterexamples,
                {"edges": live.edge_count, "session": live})

    return _timed(run, "C-3(incremental)")


def check_c3_routing_induced(routing: RoutingFunction,
                             methods: Sequence[str] = ("dfs",),
                             ) -> ObligationResult:
    """(C-3) applied to the routing-induced graph instead of the declared one.

    Useful for routing functions that do not come with a declared dependency
    graph (the baselines of :mod:`repro.routing`).
    """

    def run() -> Tuple[bool, int, List[str], Dict[str, object]]:
        graph = routing_dependency_graph(routing)
        report = check_acyclicity(graph, methods=methods)
        counterexamples: List[str] = []
        if not report.acyclic:
            cycle = report.cycle or []
            counterexamples.append(
                "dependency cycle: " + " -> ".join(str(p) for p in cycle))
        details: Dict[str, object] = {
            "vertices": graph.vertex_count,
            "edges": graph.edge_count,
            "methods": dict(report.by_method),
        }
        if report.cycle:
            details["cycle"] = [str(p) for p in report.cycle]
        return (report.acyclic, graph.edge_count * len(methods),
                counterexamples, details)

    return _timed(run, "C-3(induced)")


# ---------------------------------------------------------------------------
# (V-1) and (V-2): the VC-granular (Duato-style) deadlock obligations
# ---------------------------------------------------------------------------

def check_v1_escape_coverage(relation,
                             max_counterexamples: int = 10,
                             cache: bool = True) -> ObligationResult:
    """(V-1): every waiting channel has the escape class to fall back on.

    With ``cache=True`` (the default) the report is memoised per relation
    in the process-wide :class:`~repro.core.cache.InstanceCache` -- the
    portfolio driver, the VC theorems and the CLI all need the same
    coverage verdict for one relation.

    For a VC routing relation with a separated escape class this checks,
    over every reachable ``(channel, destination)`` pair where a header can
    wait (an in-channel or injection channel of a non-destination node):

    * at least one next hop is an escape-class channel (*coverage* -- a
      blocked packet can always request the escape network), and
    * if the channel itself is escape-class, **all** its next hops are
      escape-class (*closure* -- "once on escape, stay on escape", which
      keeps waiting chains rooted in escape channels inside the acyclic
      escape subgraph).

    Out-channels need no coverage: under the credit-based allocation of
    :class:`~repro.switching.wormhole.VCWormholeSwitching` a header only
    enters a cardinal out-channel together with a guaranteed slot in the
    downstream in-channel, so headers never *wait* inside out-channels --
    every waiting point is a VC-allocation point where the escape class is
    on offer.

    In the degenerate shared case (adaptive and escape on the same VCs,
    e.g. ``num_vcs = 1``) closure is vacuous and freedom falls back to
    whole-graph acyclicity, which (V-2) then checks.
    """

    def run() -> Tuple[bool, int, List[str], Dict[str, object]]:
        from repro.network.vc import port_of

        topology = relation.topology
        destinations = relation.destinations()
        separated = relation.classes_separated
        checks = 0
        counterexamples: List[str] = []
        for channel in topology.ports:
            port = port_of(channel)
            if not port.is_input:
                continue  # headers wait at in-channels only (credits)
            escape_channel = relation.is_escape_resource(channel)
            for destination in destinations:
                if channel == destination:
                    continue
                if port.node == port_of(destination).node:
                    continue  # ejection is always possible at the target node
                if not relation.reachable(channel, destination):
                    continue
                checks += 1
                hops = relation.next_hops(channel, destination)
                escapes = [hop for hop in hops
                           if relation.is_escape_resource(hop)]
                if not escapes:
                    if len(counterexamples) < max_counterexamples:
                        counterexamples.append(
                            f"{channel} has no escape-class hop towards "
                            f"{destination}")
                elif (separated and escape_channel and not port.is_local
                        and len(escapes) != len(hops)):
                    if len(counterexamples) < max_counterexamples:
                        counterexamples.append(
                            f"escape channel {channel} may leave the escape "
                            f"class towards {destination}")
        return (not counterexamples, checks, counterexamples,
                {"escape_vcs": list(relation.escape_vcs),
                 "classes_separated": separated})

    if cache and max_counterexamples == 10:
        # Only the default-shaped report is shared; a custom
        # counterexample budget gets a private run.
        from repro.core.cache import instance_cache

        return instance_cache().escape_coverage(relation)
    return _timed(run, "V-1")


def check_v2_escape_acyclicity(relation,
                               methods: Sequence[str] = ("dfs", "scc",
                                                         "toposort"),
                               graph: Optional[DirectedGraph] = None,
                               ) -> ObligationResult:
    """(V-2): the escape-class subgraph of the channel graph is acyclic.

    With a separated escape class this is the acyclicity half of the
    Duato-style condition; in the degenerate shared case the escape class
    spans every channel and the check *is* the paper's Theorem 1 condition
    on the full ``(port, vc)`` dependency graph.
    """

    def run() -> Tuple[bool, int, List[str], Dict[str, object]]:
        from repro.core.dependency import (
            channel_dependency_graph,
            class_subgraph,
        )

        full = graph if graph is not None \
            else channel_dependency_graph(relation)
        escape = class_subgraph(full, relation.escape_vcs)
        report = check_acyclicity(escape, methods=methods)
        counterexamples: List[str] = []
        if not report.acyclic:
            cycle = report.cycle or []
            counterexamples.append(
                "escape-class dependency cycle: "
                + " -> ".join(str(c) for c in cycle))
        details: Dict[str, object] = {
            "channels": full.vertex_count,
            "edges": full.edge_count,
            "escape_channels": escape.vertex_count,
            "escape_edges": escape.edge_count,
            "methods": dict(report.by_method),
        }
        if report.cycle:
            details["cycle"] = [str(c) for c in report.cycle]
        return (report.acyclic, escape.edge_count * len(methods),
                counterexamples, details)

    return _timed(run, "V-2")


def check_v2_incremental(relation, session=None,
                         graph: Optional[DirectedGraph] = None
                         ) -> ObligationResult:
    """(V-2) discharged through an incremental solver session.

    The channel-edge universe is encoded once into a
    :class:`~repro.core.deadlock.DeadlockQuerySession` (or merged into a
    shared one) and the escape-class restriction is a single solve under
    assumptions -- the per-VC-class analogue of the restricted ``P' ⊆ P``
    query.  The live session is returned in ``details["session"]``.
    """

    def run() -> Tuple[bool, int, List[str], Dict[str, object]]:
        from repro.core.deadlock import DeadlockQuerySession
        from repro.core.dependency import (
            channel_dependency_graph,
            class_edges,
        )

        full = graph if graph is not None \
            else channel_dependency_graph(relation)
        if session is None:
            live = DeadlockQuerySession(full, name=relation.name())
        else:
            live = session
            for source, target in full.edges():
                live.add_edge(source, target)
        edges = class_edges(full, relation.escape_vcs)
        queries_before = live.queries
        acyclic = live.is_deadlock_free_edges(edges)
        counterexamples: List[str] = []
        if not acyclic:
            core = live.cycle_core_for(edges) or []
            counterexamples.append(
                "escape-class dependency cycle within: "
                + " , ".join(f"{s} -> {t}" for s, t in core[:8]))
        return (acyclic, live.queries - queries_before, counterexamples,
                {"escape_edges": len(edges), "escape_edge_list": edges,
                 "session": live})

    return _timed(run, "V-2(incremental)")


# ---------------------------------------------------------------------------
# (C-4): the injection method is the identity
# ---------------------------------------------------------------------------

def check_c4(injection: InjectionMethod,
             configurations: Sequence[Configuration]) -> ObligationResult:
    """(C-4): ``I(σ) = σ`` on every supplied configuration.

    The obligation is checked extensionally on a family of configurations
    (the benchmark harness passes the initial configurations of all its
    workloads): injecting must change neither the pending travels, nor the
    arrived travels, nor any port buffer.
    """

    def run() -> Tuple[bool, int, List[str], Dict[str, object]]:
        checks = 0
        counterexamples: List[str] = []
        for index, config in enumerate(configurations):
            checks += 1
            injected = injection.inject(config)
            same_travels = ([t.travel_id for t in injected.travels]
                            == [t.travel_id for t in config.travels])
            same_arrived = ([t.travel_id for t in injected.arrived]
                            == [t.travel_id for t in config.arrived])
            same_state = (injected.state.occupancy_map()
                          == config.state.occupancy_map())
            if not (same_travels and same_arrived and same_state):
                counterexamples.append(
                    f"I(σ) ≠ σ for configuration #{index}")
        return (not counterexamples, checks, counterexamples, {})

    return _timed(run, "C-4")


# ---------------------------------------------------------------------------
# (C-5): the termination measure decreases on every non-deadlocked step
# ---------------------------------------------------------------------------

def check_c5(switching: SwitchingPolicy, measure: Measure,
             configurations: Sequence[Configuration],
             max_steps: int = 100_000,
             strict: bool = True) -> ObligationResult:
    """(C-5): ``σ.T ≠ ∅ ∧ ¬Ω(σ) ⟹ μ(S(R(σ))) < μ(σ)``.

    The obligation is discharged by running the switching policy on each
    supplied (already-routed) configuration and checking the measure after
    every step.  With ``strict=False`` only non-increase is required, which
    is what the paper's coarser route-length measure satisfies in the
    flit-accurate model (see :mod:`repro.core.measure`).
    """

    def run() -> Tuple[bool, int, List[str], Dict[str, object]]:
        checks = 0
        counterexamples: List[str] = []
        total_steps = 0
        for index, initial in enumerate(configurations):
            config = initial.copy()
            previous = measure(config)
            steps = 0
            while config.travels and not is_deadlock(config, switching):
                if steps >= max_steps:
                    counterexamples.append(
                        f"configuration #{index}: exceeded {max_steps} steps")
                    break
                config = switching.step(config)
                current = measure(config)
                checks += 1
                steps += 1
                violated = (current >= previous) if strict \
                    else (current > previous)
                if violated:
                    relation = "<" if strict else "<="
                    counterexamples.append(
                        f"configuration #{index}, step {steps}: measure went "
                        f"from {previous} to {current} (expected strictly "
                        f"{relation} previous)")
                    break
                previous = current
            total_steps += steps
        return (not counterexamples, checks, counterexamples,
                {"total_steps": total_steps,
                 "configurations": len(configurations)})

    return _timed(run, "C-5")
