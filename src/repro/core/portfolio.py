"""Batch verification portfolios: many scenarios, one incremental solver.

The paper verifies one instantiation (HERMES / XY / wormhole).  A
production verification flow instead sweeps a *portfolio* of
topology x routing x switching scenarios -- is each candidate design
deadlock-free, and if not, which escape edges would fix it?  This module is
the batch driver for that sweep, built on the incremental CDCL engine:

* scenarios are described declaratively (:class:`~repro.core.spec.ScenarioSpec`
  via :func:`~repro.core.spec.expand_matrix`) and resolved lazily in the
  worker that runs them, through the per-process construction cache;
* scenarios are grouped by topology;
* per topology group, **one** :class:`~repro.core.deadlock.DeadlockQuerySession`
  hosts the union of every scenario's dependency edges, each behind a
  selector variable (encoded the first time a scenario contributes it);
* each scenario's verdict is then a single solve under assumptions --
  clauses learned while deciding one routing function speed up the next.

Compare :func:`run_portfolio` (shared incremental sessions) with
``check_c3_routing_induced`` in a loop (fresh graph check per scenario):
the verdicts agree (cross-checked when ``cross_check=True``), the
incremental route additionally yields UNSAT-core cycle witnesses and
escape-edge suggestions for the failing designs.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.checking.graphs import DirectedGraph
from repro.core.cache import instance_cache
from repro.core.deadlock import DeadlockQuerySession
from repro.core.dependency import routing_dependency_graph
from repro.core.instance import NoCInstance
from repro.core.spec import ScenarioSpec, expand_matrix
from repro.network.port import Port


@dataclass
class Scenario:
    """One topology x routing x switching point of the sweep.

    A scenario is backed either by an already-built ``instance`` or --
    the cheap, preferred form -- by a declarative ``spec``
    (:class:`~repro.core.spec.ScenarioSpec`).  Spec-backed scenarios ship
    to portfolio worker processes as a few primitives and are resolved
    lazily through the per-process
    :class:`~repro.core.cache.InstanceCache`, so the parent never builds
    (or pickles) the heavy network objects.
    """

    name: str
    instance: Optional[NoCInstance] = None
    #: Scenarios with equal group share one incremental session (their
    #: topologies must have compatible port sets).  Defaults to the spec's
    #: group, else to the instance's topology shape.
    group: Optional[str] = None
    spec: Optional[ScenarioSpec] = None

    def __post_init__(self) -> None:
        if self.instance is None and self.spec is None:
            raise ValueError(
                f"scenario {self.name!r} needs an instance or a spec")

    @classmethod
    def from_spec(cls, spec: ScenarioSpec,
                  name: Optional[str] = None,
                  group: Optional[str] = None) -> "Scenario":
        """A lazily-resolved scenario described by ``spec``."""
        return cls(name=name or spec.scenario_name(), instance=None,
                   group=group, spec=spec)

    def resolve(self) -> NoCInstance:
        """The scenario's instance (built through the process cache).

        Deliberately does *not* store the built instance on the scenario:
        a resolved spec-backed scenario stays cheap to pickle.
        """
        if self.instance is not None:
            return self.instance
        return instance_cache().instance_for(self.spec)

    def group_key(self) -> str:
        if self.group is not None:
            return self.group
        if self.spec is not None:
            return self.spec.group_key()
        topology = self.instance.topology
        return f"{type(topology).__name__}[{len(topology.ports)} ports]"


def scenarios_from_specs(specs: Iterable[ScenarioSpec]) -> List[Scenario]:
    """Wrap every spec in a :class:`Scenario` (names derived from specs)."""
    return [Scenario.from_spec(spec) for spec in specs]


def shard_index_of(group_key: str, shard_count: int) -> int:
    """The shard a scenario group belongs to, stable across processes.

    Uses CRC-32 of the group key -- *not* Python's salted ``hash()`` -- so
    every worker, machine and CI job agrees on the partition.  Sharding is
    group-granular by construction: a group's scenarios always land on one
    shard, so sharded runs never split an incremental session.
    """
    if shard_count < 1:
        raise ValueError("shard count must be at least 1")
    return zlib.crc32(group_key.encode("utf-8")) % shard_count


#: Recognised ``shard_balance`` policies of :func:`run_portfolio`.
SHARD_BALANCE_POLICIES = ("hash", "weighted")


def scenario_cost(scenario: Scenario) -> float:
    """Deterministic relative cost estimate of one scenario.

    Estimated from the spec's dimensions and channel counts: the number
    of network ports drives both the encoding size (ports x counter
    bits) and the dependency-edge count, and observed solver work grows
    super-linearly in the port count on the shipped topologies -- so the
    model is ``ports ** 1.5``.  Instance-backed scenarios read their real
    port count; spec-backed scenarios *estimate* it from dims/VCs alone,
    so cost assignment never needs to build an instance.
    """
    spec = scenario.spec
    if spec is None:
        ports = len(scenario.instance.topology.ports)
        return float(ports) ** 1.5
    nodes = 1
    for dim in spec.dims:
        nodes *= int(dim)
    # Port model: rings have 2 cardinal ports per node, 2D kinds 4; one
    # local port each; VC kinds multiply the cardinal channels.
    cardinal = 2 if len(spec.dims) == 1 else 4
    ports = nodes * (cardinal * max(1, int(spec.num_vcs)) + 1)
    return float(ports) ** 1.5


def weighted_shard_assignment(group_costs: Dict[str, float],
                              shard_count: int) -> Dict[str, int]:
    """LPT (longest-processing-time) group-to-shard assignment.

    Groups are placed heaviest-first onto the currently lightest shard --
    the classic 4/3-approximation for makespan -- with every tie broken
    deterministically (equal costs: lexicographic group key; equal loads:
    lowest shard index), so all shards of a run agree on the partition
    without communicating, exactly like :func:`shard_index_of`.
    """
    if shard_count < 1:
        raise ValueError("shard count must be at least 1")
    loads = [0.0] * shard_count
    assignment: Dict[str, int] = {}
    for key, cost in sorted(group_costs.items(),
                            key=lambda item: (-item[1], item[0])):
        shard = min(range(shard_count), key=lambda index: loads[index])
        assignment[key] = shard
        loads[shard] += cost
    return assignment


@dataclass
class ScenarioVerdict:
    """The batch driver's answer for one scenario."""

    scenario: str
    topology: str
    routing: str
    switching: str
    deadlock_free: bool
    #: Dependency edges of this scenario's routing function.
    edges: int
    #: Edges this scenario newly contributed to the shared encoding (0 for
    #: a scenario whose edges were all seen before -- its query is purely
    #: incremental).
    new_edges: int
    elapsed_seconds: float
    #: For deadlock-prone designs: the UNSAT-core cycle witness and the
    #: single-edge removals that would restore deadlock freedom.
    cycle_core: List[Tuple[Port, Port]] = field(default_factory=list)
    escape_edges: List[Tuple[Port, Port]] = field(default_factory=list)
    #: Which deadlock condition produced the verdict: ``"theorem1"``
    #: (whole-graph acyclicity) or ``"vc-escape"`` (the (V-1)/(V-2)
    #: escape-class condition of a virtual-channel scenario).
    condition: str = "theorem1"
    #: Virtual channels of the scenario (1 for the single-VC model).
    num_vcs: int = 1
    #: Solver work this scenario's queries cost on the shared session
    #: (stats-counter deltas: decisions, propagations, conflicts, ...).
    solver: Dict[str, int] = field(default_factory=dict)
    #: The originating :meth:`~repro.core.spec.ScenarioSpec.to_dict` image
    #: for spec-backed scenarios (``None`` for hand-built instances).
    spec: Optional[Dict[str, object]] = None
    #: ``(index, count)`` of the shard that ran this scenario (``None`` in
    #: an unsharded run).
    shard: Optional[Tuple[int, int]] = None
    #: Submission index of the scenario in the *full* scenario list (also
    #: meaningful in a sharded run, where it orders the merged verdicts).
    index: int = -1

    def to_json_dict(self) -> Dict[str, object]:
        """A JSON-serialisable summary of this verdict (schema 3 shape)."""
        return {
            "scenario": self.scenario,
            "topology": self.topology,
            "routing": self.routing,
            "switching": self.switching,
            "condition": self.condition,
            "num_vcs": self.num_vcs,
            "deadlock_free": self.deadlock_free,
            "edges": self.edges,
            "new_edges": self.new_edges,
            "wall_time_s": round(self.elapsed_seconds, 6),
            "solver": dict(self.solver),
            "cycle_core": [f"{s} -> {t}" for s, t in self.cycle_core],
            "escape_edges": [f"{s} -> {t}" for s, t in self.escape_edges],
            "spec": dict(self.spec) if self.spec is not None else None,
            "shard": list(self.shard) if self.shard is not None else None,
        }


@dataclass
class PortfolioReport:
    """All verdicts of one portfolio run plus session statistics."""

    verdicts: List[ScenarioVerdict]
    elapsed_seconds: float
    #: Per topology group: solver statistics of the shared session.
    session_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Worker processes the run was scheduled across (1 = in-process serial).
    jobs: int = 1
    #: Construction-cache counters accumulated during the run (summed over
    #: the workers in a parallel run).
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: ``(index, count)`` of a sharded run (``None``: the whole matrix).
    shard: Optional[Tuple[int, int]] = None

    @property
    def deadlock_free_count(self) -> int:
        return sum(1 for verdict in self.verdicts if verdict.deadlock_free)

    def to_json_dict(self) -> Dict[str, object]:
        """Machine-readable export: scenarios, verdicts, solver statistics.

        The payload is what bench trajectories track across PRs, so its
        shape is versioned via ``schema``.  Schema 3 embeds the
        originating spec dict and the shard assignment per scenario, plus
        the run-level ``shard``; schema 2 added per-scenario
        ``wall_time_s`` and ``solver`` stats deltas, run-level ``jobs``
        and cache counters.
        """
        return {
            "schema": 3,
            "kind": "repro-portfolio-report",
            "jobs": self.jobs,
            "shard": list(self.shard) if self.shard is not None else None,
            "scenarios": [verdict.to_json_dict()
                          for verdict in self.verdicts],
            "summary": {
                "scenarios": len(self.verdicts),
                "deadlock_free": self.deadlock_free_count,
                "deadlock_prone": (len(self.verdicts)
                                   - self.deadlock_free_count),
                "elapsed_seconds": round(self.elapsed_seconds, 6),
                "jobs": self.jobs,
                "cache_hits": int(self.cache_stats.get("hits", 0)),
                "cache_misses": int(self.cache_stats.get("misses", 0)),
            },
            "session_stats": {group: dict(stats)
                              for group, stats in self.session_stats.items()},
            "cache": dict(self.cache_stats),
        }

    def comparable_dict(self) -> Dict[str, object]:
        """The deterministic projection of :meth:`to_json_dict`.

        Serial and parallel runs of the same scenario list produce
        *identical* verdicts, ordering, cores and solver statistics; only
        wall times, the job count and the cache counters (which depend on
        process boundaries and cross-group sharing) legitimately differ.
        Scheduling artefacts -- the shard markers and the originating spec
        dicts -- are stripped too, so a matrix-expanded run can be compared
        bit for bit against the same scenarios built by hand, and the
        merged shard reports against the unsharded run, with one ``==``.
        """
        payload = self.to_json_dict()
        del payload["jobs"]
        del payload["cache"]
        del payload["shard"]
        for scenario in payload["scenarios"]:
            del scenario["wall_time_s"]
            del scenario["spec"]
            del scenario["shard"]
        summary = payload["summary"]
        del summary["elapsed_seconds"]
        del summary["jobs"]
        del summary["cache_hits"]
        del summary["cache_misses"]
        return payload

    def write_json(self, path: str) -> None:
        """Write :meth:`to_json_dict` to ``path`` (pretty-printed)."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")

    def formatted(self) -> str:
        from repro.reporting.tables import format_table

        rows = []
        for verdict in self.verdicts:
            fixes = ", ".join(f"{s}->{t}" for s, t in verdict.escape_edges[:2])
            if len(verdict.escape_edges) > 2:
                fixes += ", ..."
            rows.append([
                verdict.scenario, verdict.routing, verdict.switching,
                "free" if verdict.deadlock_free else "DEADLOCK-PRONE",
                verdict.edges, verdict.new_edges,
                f"{verdict.elapsed_seconds * 1000:.1f}",
                fixes or "-",
            ])
        return format_table(
            ["scenario", "routing", "switching", "verdict", "dep edges",
             "new edges", "ms", "escape fixes"], rows)

    def summary(self) -> str:
        prone = len(self.verdicts) - self.deadlock_free_count
        shard = (f" [shard {self.shard[0]}/{self.shard[1]}]"
                 if self.shard is not None else "")
        return (f"portfolio{shard}: {len(self.verdicts)} scenarios, "
                f"{self.deadlock_free_count} deadlock-free, {prone} "
                f"deadlock-prone, {self.elapsed_seconds:.3f}s total")


def merge_shard_reports(reports: Sequence[PortfolioReport]
                        ) -> PortfolioReport:
    """Merge the reports of a sharded run back into one portfolio report.

    The shards of one matrix partition the scenario groups, so their
    verdict sets are disjoint and their union is the unsharded run; this
    helper re-interleaves the verdicts by original submission index and
    re-unions the per-group session statistics.  The merged report's
    :meth:`~PortfolioReport.comparable_dict` equals the unsharded run's --
    the contract the sharded CI smoke job asserts.
    """
    shards = {report.shard for report in reports}
    if shards and None not in shards:
        # Every input knows its (i, n): demand one complete shard set, so
        # a lost shard artifact cannot silently masquerade as a full run.
        counts = {count for _, count in shards}
        if len(counts) != 1:
            raise ValueError(f"shard reports disagree on the shard count: "
                             f"{sorted(counts)}")
        count = counts.pop()
        missing = sorted(set(range(count)) - {index for index, _ in shards})
        if missing:
            raise ValueError(f"incomplete shard set: missing shard(s) "
                             f"{missing} of {count}")
    verdicts = sorted((verdict for report in reports
                       for verdict in report.verdicts),
                      key=lambda verdict: verdict.index)
    indices = [verdict.index for verdict in verdicts]
    if len(set(indices)) != len(indices):
        raise ValueError("shard reports overlap: duplicate scenario indices")
    session_stats: Dict[str, Dict[str, int]] = {}
    cache_stats = {"hits": 0, "misses": 0}
    for report in reports:
        overlap = set(report.session_stats) & set(session_stats)
        if overlap:
            raise ValueError(f"shard reports overlap on groups "
                             f"{sorted(overlap)}")
        session_stats.update(report.session_stats)
        cache_stats["hits"] += int(report.cache_stats.get("hits", 0))
        cache_stats["misses"] += int(report.cache_stats.get("misses", 0))
    return PortfolioReport(
        verdicts=verdicts,
        elapsed_seconds=sum(report.elapsed_seconds for report in reports),
        session_stats=session_stats,
        jobs=max((report.jobs for report in reports), default=1),
        cache_stats=cache_stats,
        shard=None)


def _run_group(payload: Tuple,
               trace=None) -> Tuple[str, List[Tuple[int, ScenarioVerdict]],
                                    Dict[str, int], Dict[str, int]]:
    """Run one scenario group through one shared incremental session.

    ``payload`` is a single picklable tuple ``(group_key, indexed_scenarios,
    seed, analyse_failures, cross_check, shard)`` so the function can be
    shipped as-is to a :class:`~concurrent.futures.ProcessPoolExecutor`
    worker.  Spec-backed scenarios arrive as cheap declarative specs and
    are resolved *here*, through the worker's own
    :class:`~repro.core.cache.InstanceCache`; the session's vertex universe
    is the union of the group's topologies, enumerated in submission order.
    Scenarios of one group are always processed in their original
    submission order by exactly this code path, whether the portfolio runs
    serially or across workers -- which is what makes parallel runs
    bit-for-bit reproductions of serial ones (see
    :meth:`PortfolioReport.comparable_dict`).

    ``trace`` (a :class:`~repro.core.trace.TraceWriter`, serial runs only
    -- writers cannot cross the process-pool boundary) opens a
    ``scenario_begin``/``scenario_end`` span per scenario, nesting the
    session's solver/oracle events, and closes the group with a
    ``session_summary`` carrying the shared session's aggregate counters.

    Returns the group key, the ``(original_index, verdict)`` pairs, the
    group session's solver statistics, and the construction-cache counter
    deltas the group accounted for.
    """
    from repro.routing.escape import EscapeChannelRouting

    group_key, indexed_scenarios, seed, analyse_failures, \
        cross_check, shard = payload
    cache = instance_cache()
    cache_hits_before = cache.hits
    cache_misses_before = cache.misses

    resolved = []
    cache_deltas: Dict[int, Dict[str, int]] = {}
    for index, scenario in indexed_scenarios:
        hits_before, misses_before = cache.hits, cache.misses
        instance = scenario.resolve()
        cache_deltas[index] = {"hits": cache.hits - hits_before,
                               "misses": cache.misses - misses_before}
        resolved.append((index, scenario, instance))
    vertices: Dict[Port, None] = {}
    for _, _, instance in resolved:
        for port in instance.topology.ports:
            vertices.setdefault(port)

    base: DirectedGraph[Port] = DirectedGraph()
    for port in vertices:
        base.add_vertex(port)
    session = DeadlockQuerySession(base, name=group_key, seed=seed,
                                   trace=trace)
    known_edges: set = set()
    results: List[Tuple[int, ScenarioVerdict]] = []

    for index, scenario, instance in resolved:
        if trace is not None:
            trace.emit("scenario_begin", scenario=scenario.name,
                       group=group_key, index=index,
                       shard=list(shard) if shard is not None else None)
        scenario_start = time.perf_counter()
        solver_before = session.solver_stats
        graph = routing_dependency_graph(instance.routing)
        edges = graph.edges()
        new_edges = 0
        for source, target in edges:
            if (source, target) not in known_edges:
                session.add_edge(source, target)
                known_edges.add((source, target))
                new_edges += 1

        relation = (instance.routing
                    if isinstance(instance.routing, EscapeChannelRouting)
                    else None)
        coverage = None
        if relation is None:
            condition = "theorem1"
            num_vcs = 1
            query_edges = edges
            deadlock_free = session.is_deadlock_free_edges(edges)
        else:
            # The VC-granular Duato condition: explicit (V-1) coverage plus
            # the escape-class restriction of (V-2) on the shared session.
            from repro.core.dependency import class_edges
            from repro.core.obligations import check_v1_escape_coverage

            condition = "vc-escape"
            num_vcs = relation.num_vcs
            query_edges = class_edges(graph, relation.escape_vcs)
            coverage = check_v1_escape_coverage(relation)
            deadlock_free = (coverage.holds
                             and session.is_deadlock_free_edges(query_edges))

        cycle_core: List[Tuple[Port, Port]] = []
        escape: List[Tuple[Port, Port]] = []
        if not deadlock_free and analyse_failures:
            cycle_core = session.cycle_core_for(query_edges) or []
            escape = [edge for edge in cycle_core
                      if session.is_deadlock_free_edges(
                          e for e in query_edges if e != edge)]

        if cross_check:
            if relation is None:
                from repro.checking.graphs import find_cycle_dfs

                reference = find_cycle_dfs(graph).acyclic
            else:
                from repro.core.theorems import check_deadlock_freedom_vc

                reference = check_deadlock_freedom_vc(
                    relation, graph=graph, coverage=coverage).holds
            if reference != deadlock_free:
                raise AssertionError(
                    f"portfolio verdict disagrees with the explicit check "
                    f"for {scenario.name}: sat={deadlock_free} "
                    f"explicit={reference}")

        solver_after = session.solver_stats
        solver_delta = {key: solver_after[key] - solver_before.get(key, 0)
                        for key in solver_after}
        elapsed = time.perf_counter() - scenario_start
        if trace is not None:
            trace.emit("scenario_end", scenario=scenario.name,
                       group=group_key, deadlock_free=deadlock_free,
                       condition=condition, edges=len(edges),
                       new_edges=new_edges, solver=solver_delta,
                       cache=cache_deltas[index],
                       wall_time_s=round(elapsed, 6))
        results.append((index, ScenarioVerdict(
            scenario=scenario.name,
            topology=str(instance.topology),
            routing=instance.routing.name(),
            switching=instance.switching.name(),
            deadlock_free=deadlock_free,
            edges=len(edges),
            new_edges=new_edges,
            elapsed_seconds=elapsed,
            cycle_core=cycle_core,
            escape_edges=escape,
            condition=condition,
            num_vcs=num_vcs,
            solver=solver_delta,
            spec=(scenario.spec.to_dict()
                  if scenario.spec is not None else None),
            shard=shard,
            index=index,
        )))

    if trace is not None:
        trace.emit("session_summary", group=group_key,
                   stats=session.solver_stats)
    cache_delta = {"hits": cache.hits - cache_hits_before,
                   "misses": cache.misses - cache_misses_before}
    return group_key, results, session.solver_stats, cache_delta


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` mean "all cores"."""
    if jobs is None or jobs < 1:
        return os.cpu_count() or 1
    return jobs


def run_portfolio(scenarios: Sequence[Scenario],
                  seed: int = 2010,
                  analyse_failures: bool = True,
                  cross_check: bool = False,
                  jobs: int = 1,
                  shard: Optional[Tuple[int, int]] = None,
                  shard_balance: str = "hash",
                  trace=None) -> PortfolioReport:
    """Run every scenario through shared incremental deadlock sessions.

    ``analyse_failures`` additionally extracts the cycle core and the
    escape-edge suggestions for deadlock-prone scenarios (a handful of
    extra incremental solves each).  ``cross_check`` re-derives every
    verdict with the linear-time explicit check (DFS cycle search, or the
    explicit (V-1)/(V-2) checker for VC scenarios) and asserts agreement --
    the belt-and-braces mode used by the tests.

    ``jobs`` schedules the scenario *groups* across that many worker
    processes (``0``/``None``: one per core).  Scheduling is group-affine:
    scenarios sharing a ``group_key`` stay on one worker, in submission
    order, so the group-union session seeding and the per-process
    construction caches keep paying off exactly as in a serial run.  The
    verdicts -- ordering, verdict bits, cores, solver statistics -- are
    identical to ``jobs=1``; only wall times and cache counters differ
    (assert with :meth:`PortfolioReport.comparable_dict`).

    ``shard=(i, n)`` restricts the run to the ``i``-th of ``n`` partitions
    of the scenario *groups* (assignment by :func:`shard_index_of`, stable
    across processes and machines).  Pass the **full** scenario list to
    every shard: each shard selects its own groups, keeps the original
    submission indices on its verdicts, and never splits a group -- so
    incremental sessions stay whole and
    :func:`merge_shard_reports` reassembles the exact unsharded report.

    ``shard_balance`` chooses the group-to-shard assignment: ``"hash"``
    (CRC-32, cost-oblivious) or ``"weighted"`` (LPT over the
    :func:`scenario_cost` model, evening out shard wall times on skewed
    grids).  Both are deterministic functions of the full scenario list,
    so every shard of one run agrees on the partition; the merged report
    is identical either way, only the work split differs.

    Scenarios whose routing is a
    :class:`~repro.routing.escape.EscapeChannelRouting` are decided by the
    VC-granular escape condition: (V-1) by explicit enumeration, (V-2) as
    an incremental solve restricted to the escape-class edges of the shared
    universe.  Their group sessions therefore host *channel* vertices; mix
    VC and single-VC scenarios in one group only if their vertex universes
    agree.

    ``trace`` (a :class:`~repro.core.trace.TraceWriter`) records the run as
    a structured event stream -- portfolio/scenario spans wrapping the
    oracle and solver events.  Tracing is **serial only**: a writer cannot
    cross the process-pool boundary, so ``trace`` with ``jobs != 1`` is an
    error rather than a silently partial stream.
    """
    start = time.perf_counter()
    ordered = list(scenarios)
    jobs = resolve_jobs(jobs)
    if trace is not None and jobs > 1:
        raise ValueError(
            "tracing requires a serial run: pass jobs=1 with trace=")
    if shard_balance not in SHARD_BALANCE_POLICIES:
        raise ValueError(f"shard_balance must be one of "
                         f"{SHARD_BALANCE_POLICIES}, got {shard_balance!r}")
    if shard is not None:
        shard_index, shard_count = int(shard[0]), int(shard[1])
        if shard_count < 1 or not 0 <= shard_index < shard_count:
            raise ValueError(f"shard must be (i, n) with 0 <= i < n, "
                             f"got {shard!r}")
        shard = (shard_index, shard_count)

    # Group scenarios by key, preserving submission order.  Each group's
    # worker seeds its session with the union of the group's vertex
    # universes, so scenarios over growing channel sets (1, 2, 4 VCs of
    # one topology) can share one encoding.
    groups: Dict[str, List[Tuple[int, Scenario]]] = {}
    for index, scenario in enumerate(ordered):
        groups.setdefault(scenario.group_key(), []).append((index, scenario))

    if shard is not None:
        if shard_balance == "weighted":
            # Costs are derived from the FULL group set (every shard sees
            # the whole scenario list), so all shards compute the same
            # LPT assignment independently.
            costs = {key: sum(scenario_cost(scenario)
                              for _, scenario in indexed)
                     for key, indexed in groups.items()}
            assignment = weighted_shard_assignment(costs, shard[1])
            groups = {key: indexed for key, indexed in groups.items()
                      if assignment[key] == shard[0]}
        else:
            groups = {key: indexed for key, indexed in groups.items()
                      if shard_index_of(key, shard[1]) == shard[0]}

    # In a sharded run the verdict list covers only this shard's scenarios;
    # verdicts keep their original submission index, the report orders them
    # by it.
    kept_indices = sorted(index for indexed in groups.values()
                          for index, _ in indexed)
    positions = {index: position
                 for position, index in enumerate(kept_indices)}

    payloads = [(key, indexed, seed, analyse_failures, cross_check, shard)
                for key, indexed in groups.items()]

    if trace is not None:
        trace.emit("portfolio_begin", scenarios=len(kept_indices),
                   shard=list(shard) if shard is not None else None)

    # ``jobs`` in the report records what actually happened: 1 when the
    # run stayed in-process (requested serial, or nothing to parallelise),
    # the worker count of the pool otherwise.
    if jobs <= 1 or len(groups) <= 1:
        jobs = 1
        group_results = [_run_group(payload, trace=trace)
                         for payload in payloads]
    else:
        from concurrent.futures import ProcessPoolExecutor

        jobs = min(jobs, len(groups))
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(_run_group, payload)
                       for payload in payloads]
            group_results = [future.result() for future in futures]

    verdicts: List[Optional[ScenarioVerdict]] = [None] * len(kept_indices)
    session_stats: Dict[str, Dict[str, int]] = {}
    cache_stats = {"hits": 0, "misses": 0}
    for group_key, indexed_verdicts, stats, cache_delta in group_results:
        session_stats[group_key] = stats
        cache_stats["hits"] += cache_delta["hits"]
        cache_stats["misses"] += cache_delta["misses"]
        for index, verdict in indexed_verdicts:
            verdicts[positions[index]] = verdict

    assert all(verdict is not None for verdict in verdicts)
    if trace is not None:
        free = sum(1 for verdict in verdicts
                   if verdict is not None and verdict.deadlock_free)
        trace.emit("portfolio_end", scenarios=len(verdicts),
                   deadlock_free=free,
                   deadlock_prone=len(verdicts) - free)
        trace.flush()
    return PortfolioReport(
        verdicts=verdicts,  # type: ignore[arg-type]
        elapsed_seconds=time.perf_counter() - start,
        session_stats=session_stats,
        jobs=jobs,
        cache_stats=cache_stats,
        shard=shard)


def standard_matrix(mesh_sizes: Iterable[int] = (3, 4),
                    ring_sizes: Iterable[int] = (4,),
                    buffer_capacity: int = 2) -> List[str]:
    """The standard sweep as matrix terms (see :func:`standard_portfolio`).

    One wormhole term plus the paper's virtual-cut-through pair per mesh
    size, then the deadlock-free and deadlock-prone rings -- the exact
    scenario order of the historical hand-built list, now declaratively.
    The mesh term sweeps *every* routing token the ``mesh`` kind
    registers, so a newly registered routing automatically joins the
    standard portfolio.
    """
    from repro.core.spec import spec_registry

    routing_list = ",".join(spec_registry().entry("mesh").routings)
    terms: List[str] = []
    for size in mesh_sizes:
        terms.append(f"mesh:{size}x{size}, routing=[{routing_list}], "
                     f"switching=wormhole, buffers={buffer_capacity}")
        terms.append(f"mesh:{size}x{size}, routing=xy, switching=vct, "
                     f"buffers={buffer_capacity}")
    for size in ring_sizes:
        terms.append(f"ring:{size}, routing=chain, "
                     f"buffers={buffer_capacity}")
        # The clockwise counterexample keeps its historical single-buffer
        # instantiation (the deadlock verdict is capacity-independent).
        terms.append(f"ring:{size}, routing=clockwise, buffers=1")
    return terms


def standard_portfolio(mesh_sizes: Iterable[int] = (3, 4),
                       ring_sizes: Iterable[int] = (4,),
                       buffer_capacity: int = 2) -> List[Scenario]:
    """The library's standard sweep: every routing function on square
    meshes (wormhole and virtual cut-through for the paper's pair), plus
    the deadlock-free and deadlock-prone ring instantiations.

    Built by expanding :func:`standard_matrix` through the declarative
    spec layer -- the same construction path as ``repro batch --matrix``.
    """
    return scenarios_from_specs(expand_matrix(standard_matrix(
        mesh_sizes=mesh_sizes, ring_sizes=ring_sizes,
        buffer_capacity=buffer_capacity)))


def vc_escape_matrix(mesh_sizes: Iterable[int] = (3,),
                     torus_sizes: Iterable[int] = (4,),
                     vc_counts: Sequence[int] = (1, 2, 4),
                     buffer_capacity: int = 2) -> List[str]:
    """The VC escape sweep as matrix terms (see :func:`vc_escape_portfolio`)."""
    vcs = ",".join(str(count) for count in vc_counts)
    terms: List[str] = []
    for size in mesh_sizes:
        terms.append(f"vc-mesh:{size}x{size}, vcs=[{vcs}], "
                     f"buffers={buffer_capacity}")
    for size in torus_sizes:
        terms.append(f"vc-torus:{size}x{size}, vcs=[{vcs}], "
                     f"buffers={buffer_capacity}")
    return terms


def vc_escape_portfolio(mesh_sizes: Iterable[int] = (3,),
                        torus_sizes: Iterable[int] = (4,),
                        vc_counts: Sequence[int] = (1, 2, 4),
                        buffer_capacity: int = 2) -> List[Scenario]:
    """The virtual-channel escape sweep: one shared session per topology.

    For every mesh size, fully-adaptive minimal routing with an XY escape
    VC at each VC count; for every torus size, dimension-order routing with
    a dateline escape pair (plus an adaptive class from 3 VCs up).  All VC
    counts of one topology share a group (their channel universes nest), so
    the sweep exercises the incremental encoding across growing VC counts:
    the 1-VC verdict is deadlock-prone, the multi-VC verdicts are proved
    free by the escape condition on the same solver.
    """
    return scenarios_from_specs(expand_matrix(vc_escape_matrix(
        mesh_sizes=mesh_sizes, torus_sizes=torus_sizes,
        vc_counts=vc_counts, buffer_capacity=buffer_capacity)))


def extended_matrix(mesh_sizes: Iterable[int] = (8, 16),
                    ring_sizes: Iterable[int] = (8,),
                    vc_mesh_sizes: Iterable[int] = (8,),
                    vc_counts: Sequence[int] = (1, 2, 4),
                    buffer_capacity: int = 2) -> List[str]:
    """The bench sweep as matrix terms (see :func:`extended_portfolio`)."""
    return (standard_matrix(mesh_sizes=mesh_sizes, ring_sizes=ring_sizes,
                            buffer_capacity=buffer_capacity)
            + vc_escape_matrix(mesh_sizes=vc_mesh_sizes, torus_sizes=(),
                               vc_counts=vc_counts,
                               buffer_capacity=buffer_capacity))


def extended_portfolio(mesh_sizes: Iterable[int] = (8, 16),
                       ring_sizes: Iterable[int] = (8,),
                       vc_mesh_sizes: Iterable[int] = (8,),
                       vc_counts: Sequence[int] = (1, 2, 4),
                       buffer_capacity: int = 2) -> List[Scenario]:
    """The bench sweep: the standard portfolio scaled up to large meshes.

    Every routing function of the standard portfolio on 8x8 and 16x16
    meshes plus the VC escape scenarios (1/2/4 VCs) on an 8x8 mesh -- large
    enough dependency universes (thousands of ports/channels) that the
    parallel scheduling and the construction caches have headroom to show
    themselves, yet each group still finishes in seconds.  This is the
    portfolio the ``repro bench`` trajectory runs serial vs. parallel.
    """
    return scenarios_from_specs(expand_matrix(extended_matrix(
        mesh_sizes=mesh_sizes, ring_sizes=ring_sizes,
        vc_mesh_sizes=vc_mesh_sizes, vc_counts=vc_counts,
        buffer_capacity=buffer_capacity)))
