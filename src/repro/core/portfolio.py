"""Batch verification portfolios: many scenarios, one incremental solver.

The paper verifies one instantiation (HERMES / XY / wormhole).  A
production verification flow instead sweeps a *portfolio* of
topology x routing x switching scenarios -- is each candidate design
deadlock-free, and if not, which escape edges would fix it?  This module is
the batch driver for that sweep, built on the incremental CDCL engine:

* scenarios are grouped by topology;
* per topology group, **one** :class:`~repro.core.deadlock.DeadlockQuerySession`
  hosts the union of every scenario's dependency edges, each behind a
  selector variable (encoded the first time a scenario contributes it);
* each scenario's verdict is then a single solve under assumptions --
  clauses learned while deciding one routing function speed up the next.

Compare :func:`run_portfolio` (shared incremental sessions) with
``check_c3_routing_induced`` in a loop (fresh graph check per scenario):
the verdicts agree (cross-checked when ``cross_check=True``), the
incremental route additionally yields UNSAT-core cycle witnesses and
escape-edge suggestions for the failing designs.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.checking.graphs import DirectedGraph
from repro.core.cache import instance_cache
from repro.core.deadlock import DeadlockQuerySession
from repro.core.dependency import routing_dependency_graph
from repro.core.instance import NoCInstance
from repro.network.port import Port


@dataclass
class Scenario:
    """One topology x routing x switching point of the sweep."""

    name: str
    instance: NoCInstance
    #: Scenarios with equal group share one incremental session (their
    #: topologies must have compatible port sets).  Defaults to the
    #: instance's topology shape.
    group: Optional[str] = None

    def group_key(self) -> str:
        if self.group is not None:
            return self.group
        topology = self.instance.topology
        return f"{type(topology).__name__}[{len(topology.ports)} ports]"


@dataclass
class ScenarioVerdict:
    """The batch driver's answer for one scenario."""

    scenario: str
    topology: str
    routing: str
    switching: str
    deadlock_free: bool
    #: Dependency edges of this scenario's routing function.
    edges: int
    #: Edges this scenario newly contributed to the shared encoding (0 for
    #: a scenario whose edges were all seen before -- its query is purely
    #: incremental).
    new_edges: int
    elapsed_seconds: float
    #: For deadlock-prone designs: the UNSAT-core cycle witness and the
    #: single-edge removals that would restore deadlock freedom.
    cycle_core: List[Tuple[Port, Port]] = field(default_factory=list)
    escape_edges: List[Tuple[Port, Port]] = field(default_factory=list)
    #: Which deadlock condition produced the verdict: ``"theorem1"``
    #: (whole-graph acyclicity) or ``"vc-escape"`` (the (V-1)/(V-2)
    #: escape-class condition of a virtual-channel scenario).
    condition: str = "theorem1"
    #: Virtual channels of the scenario (1 for the single-VC model).
    num_vcs: int = 1
    #: Solver work this scenario's queries cost on the shared session
    #: (stats-counter deltas: decisions, propagations, conflicts, ...).
    solver: Dict[str, int] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, object]:
        """A JSON-serialisable summary of this verdict (schema 2 shape)."""
        return {
            "scenario": self.scenario,
            "topology": self.topology,
            "routing": self.routing,
            "switching": self.switching,
            "condition": self.condition,
            "num_vcs": self.num_vcs,
            "deadlock_free": self.deadlock_free,
            "edges": self.edges,
            "new_edges": self.new_edges,
            "wall_time_s": round(self.elapsed_seconds, 6),
            "solver": dict(self.solver),
            "cycle_core": [f"{s} -> {t}" for s, t in self.cycle_core],
            "escape_edges": [f"{s} -> {t}" for s, t in self.escape_edges],
        }


@dataclass
class PortfolioReport:
    """All verdicts of one portfolio run plus session statistics."""

    verdicts: List[ScenarioVerdict]
    elapsed_seconds: float
    #: Per topology group: solver statistics of the shared session.
    session_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Worker processes the run was scheduled across (1 = in-process serial).
    jobs: int = 1
    #: Construction-cache counters accumulated during the run (summed over
    #: the workers in a parallel run).
    cache_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def deadlock_free_count(self) -> int:
        return sum(1 for verdict in self.verdicts if verdict.deadlock_free)

    def to_json_dict(self) -> Dict[str, object]:
        """Machine-readable export: scenarios, verdicts, solver statistics.

        The payload is what bench trajectories track across PRs, so its
        shape is versioned via ``schema``.  Schema 2 adds per-scenario
        ``wall_time_s`` and ``solver`` stats deltas, and run-level ``jobs``
        and cache counters.
        """
        return {
            "schema": 2,
            "kind": "repro-portfolio-report",
            "jobs": self.jobs,
            "scenarios": [verdict.to_json_dict()
                          for verdict in self.verdicts],
            "summary": {
                "scenarios": len(self.verdicts),
                "deadlock_free": self.deadlock_free_count,
                "deadlock_prone": (len(self.verdicts)
                                   - self.deadlock_free_count),
                "elapsed_seconds": round(self.elapsed_seconds, 6),
                "jobs": self.jobs,
                "cache_hits": int(self.cache_stats.get("hits", 0)),
                "cache_misses": int(self.cache_stats.get("misses", 0)),
            },
            "session_stats": {group: dict(stats)
                              for group, stats in self.session_stats.items()},
            "cache": dict(self.cache_stats),
        }

    def comparable_dict(self) -> Dict[str, object]:
        """The deterministic projection of :meth:`to_json_dict`.

        Serial and parallel runs of the same scenario list produce
        *identical* verdicts, ordering, cores and solver statistics; only
        wall times, the job count and the cache counters (which depend on
        process boundaries and cross-group sharing) legitimately differ.
        This helper strips exactly those fields so the parallel-determinism
        contract can be asserted with one ``==``.
        """
        payload = self.to_json_dict()
        del payload["jobs"]
        del payload["cache"]
        for scenario in payload["scenarios"]:
            del scenario["wall_time_s"]
        summary = payload["summary"]
        del summary["elapsed_seconds"]
        del summary["jobs"]
        del summary["cache_hits"]
        del summary["cache_misses"]
        return payload

    def write_json(self, path: str) -> None:
        """Write :meth:`to_json_dict` to ``path`` (pretty-printed)."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")

    def formatted(self) -> str:
        from repro.reporting.tables import format_table

        rows = []
        for verdict in self.verdicts:
            fixes = ", ".join(f"{s}->{t}" for s, t in verdict.escape_edges[:2])
            if len(verdict.escape_edges) > 2:
                fixes += ", ..."
            rows.append([
                verdict.scenario, verdict.routing, verdict.switching,
                "free" if verdict.deadlock_free else "DEADLOCK-PRONE",
                verdict.edges, verdict.new_edges,
                f"{verdict.elapsed_seconds * 1000:.1f}",
                fixes or "-",
            ])
        return format_table(
            ["scenario", "routing", "switching", "verdict", "dep edges",
             "new edges", "ms", "escape fixes"], rows)

    def summary(self) -> str:
        prone = len(self.verdicts) - self.deadlock_free_count
        return (f"portfolio: {len(self.verdicts)} scenarios, "
                f"{self.deadlock_free_count} deadlock-free, {prone} "
                f"deadlock-prone, {self.elapsed_seconds:.3f}s total")


def _run_group(payload: Tuple) -> Tuple[str, List[Tuple[int, ScenarioVerdict]],
                                        Dict[str, int], Dict[str, int]]:
    """Run one scenario group through one shared incremental session.

    ``payload`` is a single picklable tuple ``(group_key, indexed_scenarios,
    vertices, seed, analyse_failures, cross_check)`` so the function can be
    shipped as-is to a :class:`~concurrent.futures.ProcessPoolExecutor`
    worker.  Scenarios of one group are always processed in their original
    submission order by exactly this code path, whether the portfolio runs
    serially or across workers -- which is what makes parallel runs
    bit-for-bit reproductions of serial ones (see
    :meth:`PortfolioReport.comparable_dict`).

    Returns the group key, the ``(original_index, verdict)`` pairs, the
    group session's solver statistics, and the construction-cache counter
    deltas the group accounted for.
    """
    from repro.routing.escape import EscapeChannelRouting

    group_key, indexed_scenarios, vertices, seed, analyse_failures, \
        cross_check = payload
    cache = instance_cache()
    cache_hits_before = cache.hits
    cache_misses_before = cache.misses

    base: DirectedGraph[Port] = DirectedGraph()
    for port in vertices:
        base.add_vertex(port)
    session = DeadlockQuerySession(base, name=group_key, seed=seed)
    known_edges: set = set()
    results: List[Tuple[int, ScenarioVerdict]] = []

    for index, scenario in indexed_scenarios:
        scenario_start = time.perf_counter()
        instance = scenario.instance
        solver_before = session.solver_stats
        graph = routing_dependency_graph(instance.routing)
        edges = graph.edges()
        new_edges = 0
        for source, target in edges:
            if (source, target) not in known_edges:
                session.add_edge(source, target)
                known_edges.add((source, target))
                new_edges += 1

        relation = (instance.routing
                    if isinstance(instance.routing, EscapeChannelRouting)
                    else None)
        coverage = None
        if relation is None:
            condition = "theorem1"
            num_vcs = 1
            query_edges = edges
            deadlock_free = session.is_deadlock_free_edges(edges)
        else:
            # The VC-granular Duato condition: explicit (V-1) coverage plus
            # the escape-class restriction of (V-2) on the shared session.
            from repro.core.dependency import class_edges
            from repro.core.obligations import check_v1_escape_coverage

            condition = "vc-escape"
            num_vcs = relation.num_vcs
            query_edges = class_edges(graph, relation.escape_vcs)
            coverage = check_v1_escape_coverage(relation)
            deadlock_free = (coverage.holds
                             and session.is_deadlock_free_edges(query_edges))

        cycle_core: List[Tuple[Port, Port]] = []
        escape: List[Tuple[Port, Port]] = []
        if not deadlock_free and analyse_failures:
            cycle_core = session.cycle_core_for(query_edges) or []
            escape = [edge for edge in cycle_core
                      if session.is_deadlock_free_edges(
                          e for e in query_edges if e != edge)]

        if cross_check:
            if relation is None:
                from repro.checking.graphs import find_cycle_dfs

                reference = find_cycle_dfs(graph).acyclic
            else:
                from repro.core.theorems import check_deadlock_freedom_vc

                reference = check_deadlock_freedom_vc(
                    relation, graph=graph, coverage=coverage).holds
            if reference != deadlock_free:
                raise AssertionError(
                    f"portfolio verdict disagrees with the explicit check "
                    f"for {scenario.name}: sat={deadlock_free} "
                    f"explicit={reference}")

        solver_after = session.solver_stats
        results.append((index, ScenarioVerdict(
            scenario=scenario.name,
            topology=str(instance.topology),
            routing=instance.routing.name(),
            switching=instance.switching.name(),
            deadlock_free=deadlock_free,
            edges=len(edges),
            new_edges=new_edges,
            elapsed_seconds=time.perf_counter() - scenario_start,
            cycle_core=cycle_core,
            escape_edges=escape,
            condition=condition,
            num_vcs=num_vcs,
            solver={key: solver_after[key] - solver_before.get(key, 0)
                    for key in solver_after},
        )))

    cache_delta = {"hits": cache.hits - cache_hits_before,
                   "misses": cache.misses - cache_misses_before}
    return group_key, results, session.solver_stats, cache_delta


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` mean "all cores"."""
    if jobs is None or jobs < 1:
        return os.cpu_count() or 1
    return jobs


def run_portfolio(scenarios: Sequence[Scenario],
                  seed: int = 2010,
                  analyse_failures: bool = True,
                  cross_check: bool = False,
                  jobs: int = 1) -> PortfolioReport:
    """Run every scenario through shared incremental deadlock sessions.

    ``analyse_failures`` additionally extracts the cycle core and the
    escape-edge suggestions for deadlock-prone scenarios (a handful of
    extra incremental solves each).  ``cross_check`` re-derives every
    verdict with the linear-time explicit check (DFS cycle search, or the
    explicit (V-1)/(V-2) checker for VC scenarios) and asserts agreement --
    the belt-and-braces mode used by the tests.

    ``jobs`` schedules the scenario *groups* across that many worker
    processes (``0``/``None``: one per core).  Scheduling is group-affine:
    scenarios sharing a ``group_key`` stay on one worker, in submission
    order, so the group-union session seeding and the per-process
    construction caches keep paying off exactly as in a serial run.  The
    verdicts -- ordering, verdict bits, cores, solver statistics -- are
    identical to ``jobs=1``; only wall times and cache counters differ
    (assert with :meth:`PortfolioReport.comparable_dict`).

    Scenarios whose routing is a
    :class:`~repro.routing.escape.EscapeChannelRouting` are decided by the
    VC-granular escape condition: (V-1) by explicit enumeration, (V-2) as
    an incremental solve restricted to the escape-class edges of the shared
    universe.  Their group sessions therefore host *channel* vertices; mix
    VC and single-VC scenarios in one group only if their vertex universes
    agree.
    """
    start = time.perf_counter()
    ordered = list(scenarios)
    jobs = resolve_jobs(jobs)

    # Group scenarios by key (preserving submission order) and seed each
    # group's session with the union of the group's vertex universes, so
    # scenarios over growing channel sets (1, 2, 4 VCs of one topology) can
    # share one encoding.
    group_vertices: Dict[str, Dict[Port, None]] = {}
    groups: Dict[str, List[Tuple[int, Scenario]]] = {}
    for index, scenario in enumerate(ordered):
        key = scenario.group_key()
        vertices = group_vertices.setdefault(key, {})
        for port in scenario.instance.topology.ports:
            vertices.setdefault(port)
        groups.setdefault(key, []).append((index, scenario))

    payloads = [(key, indexed, list(group_vertices[key]), seed,
                 analyse_failures, cross_check)
                for key, indexed in groups.items()]

    # ``jobs`` in the report records what actually happened: 1 when the
    # run stayed in-process (requested serial, or nothing to parallelise),
    # the worker count of the pool otherwise.
    if jobs <= 1 or len(groups) <= 1:
        jobs = 1
        group_results = [_run_group(payload) for payload in payloads]
    else:
        from concurrent.futures import ProcessPoolExecutor

        jobs = min(jobs, len(groups))
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(_run_group, payload)
                       for payload in payloads]
            group_results = [future.result() for future in futures]

    verdicts: List[Optional[ScenarioVerdict]] = [None] * len(ordered)
    session_stats: Dict[str, Dict[str, int]] = {}
    cache_stats = {"hits": 0, "misses": 0}
    for group_key, indexed_verdicts, stats, cache_delta in group_results:
        session_stats[group_key] = stats
        cache_stats["hits"] += cache_delta["hits"]
        cache_stats["misses"] += cache_delta["misses"]
        for index, verdict in indexed_verdicts:
            verdicts[index] = verdict

    assert all(verdict is not None for verdict in verdicts)
    return PortfolioReport(
        verdicts=verdicts,  # type: ignore[arg-type]
        elapsed_seconds=time.perf_counter() - start,
        session_stats=session_stats,
        jobs=jobs,
        cache_stats=cache_stats)


def standard_portfolio(mesh_sizes: Iterable[int] = (3, 4),
                       ring_sizes: Iterable[int] = (4,),
                       buffer_capacity: int = 2) -> List[Scenario]:
    """The library's standard sweep: every routing function on square
    meshes (wormhole and virtual cut-through for the paper's pair), plus
    the deadlock-free and deadlock-prone ring instantiations."""
    from repro.hermes import build_hermes_instance
    from repro.ringnoc import (
        build_chain_ring_instance,
        build_clockwise_ring_instance,
    )
    from repro.routing.adaptive import (
        FullyAdaptiveMinimalRouting,
        ZigZagRouting,
    )
    from repro.routing.turn_model import (
        NegativeFirstRouting,
        NorthLastRouting,
        WestFirstRouting,
    )
    from repro.routing.xy import XYRouting
    from repro.routing.yx import YXRouting
    from repro.network.mesh import Mesh2D
    from repro.switching.virtual_cut_through import VirtualCutThroughSwitching
    from repro.switching.wormhole import WormholeSwitching

    scenarios: List[Scenario] = []
    for size in mesh_sizes:
        mesh = Mesh2D(size, size)
        group = f"mesh-{size}x{size}"
        routings = [XYRouting(mesh), YXRouting(mesh),
                    WestFirstRouting(mesh), NorthLastRouting(mesh),
                    NegativeFirstRouting(mesh),
                    FullyAdaptiveMinimalRouting(mesh), ZigZagRouting(mesh)]
        for routing in routings:
            scenarios.append(Scenario(
                name=f"{group}/{routing.name()}/Swh",
                instance=build_hermes_instance(
                    size, size, buffer_capacity=buffer_capacity,
                    routing=routing),
                group=group))
        # The paper's pair of switching policies on the paper's routing.
        scenarios.append(Scenario(
            name=f"{group}/Rxy/Svct",
            instance=build_hermes_instance(
                size, size, buffer_capacity=buffer_capacity,
                routing=XYRouting(mesh),
                switching=VirtualCutThroughSwitching()),
            group=group))
    for size in ring_sizes:
        scenarios.append(Scenario(
            name=f"ring-{size}/chain",
            instance=build_chain_ring_instance(
                size, buffer_capacity=buffer_capacity),
            group=f"ring-{size}"))
        scenarios.append(Scenario(
            name=f"ring-{size}/clockwise",
            instance=build_clockwise_ring_instance(size),
            group=f"ring-{size}"))
    return scenarios


def vc_escape_portfolio(mesh_sizes: Iterable[int] = (3,),
                        torus_sizes: Iterable[int] = (4,),
                        vc_counts: Sequence[int] = (1, 2, 4),
                        buffer_capacity: int = 2) -> List[Scenario]:
    """The virtual-channel escape sweep: one shared session per topology.

    For every mesh size, fully-adaptive minimal routing with an XY escape
    VC at each VC count; for every torus size, dimension-order routing with
    a dateline escape pair (plus an adaptive class from 3 VCs up).  All VC
    counts of one topology share a group (their channel universes nest), so
    the sweep exercises the incremental encoding across growing VC counts:
    the 1-VC verdict is deadlock-prone, the multi-VC verdicts are proved
    free by the escape condition on the same solver.
    """
    from repro.vcnoc import build_vc_mesh_instance, build_vc_torus_instance

    scenarios: List[Scenario] = []
    for size in mesh_sizes:
        group = f"vc-mesh-{size}x{size}"
        for vcs in vc_counts:
            scenarios.append(Scenario(
                name=f"{group}/Radaptive+esc-xy/{vcs}vc",
                instance=build_vc_mesh_instance(
                    size, size, num_vcs=vcs,
                    buffer_capacity=buffer_capacity),
                group=group))
    for size in torus_sizes:
        group = f"vc-torus-{size}x{size}"
        for vcs in vc_counts:
            scenarios.append(Scenario(
                name=f"{group}/Rxy-torus+esc-dateline/{vcs}vc",
                instance=build_vc_torus_instance(
                    size, size, num_vcs=vcs,
                    buffer_capacity=buffer_capacity),
                group=group))
    return scenarios


def extended_portfolio(mesh_sizes: Iterable[int] = (8, 16),
                       ring_sizes: Iterable[int] = (8,),
                       vc_mesh_sizes: Iterable[int] = (8,),
                       vc_counts: Sequence[int] = (1, 2, 4),
                       buffer_capacity: int = 2) -> List[Scenario]:
    """The bench sweep: the standard portfolio scaled up to large meshes.

    Every routing function of the standard portfolio on 8x8 and 16x16
    meshes plus the VC escape scenarios (1/2/4 VCs) on an 8x8 mesh -- large
    enough dependency universes (thousands of ports/channels) that the
    parallel scheduling and the construction caches have headroom to show
    themselves, yet each group still finishes in seconds.  This is the
    portfolio the ``repro bench`` trajectory runs serial vs. parallel.
    """
    return (standard_portfolio(mesh_sizes=mesh_sizes,
                               ring_sizes=ring_sizes,
                               buffer_capacity=buffer_capacity)
            + vc_escape_portfolio(mesh_sizes=vc_mesh_sizes,
                                  torus_sizes=(),
                                  vc_counts=vc_counts,
                                  buffer_capacity=buffer_capacity))
