"""Batch verification portfolios: many scenarios, one incremental solver.

The paper verifies one instantiation (HERMES / XY / wormhole).  A
production verification flow instead sweeps a *portfolio* of
topology x routing x switching scenarios -- is each candidate design
deadlock-free, and if not, which escape edges would fix it?  This module is
the batch driver for that sweep, built on the incremental CDCL engine:

* scenarios are grouped by topology;
* per topology group, **one** :class:`~repro.core.deadlock.DeadlockQuerySession`
  hosts the union of every scenario's dependency edges, each behind a
  selector variable (encoded the first time a scenario contributes it);
* each scenario's verdict is then a single solve under assumptions --
  clauses learned while deciding one routing function speed up the next.

Compare :func:`run_portfolio` (shared incremental sessions) with
``check_c3_routing_induced`` in a loop (fresh graph check per scenario):
the verdicts agree (cross-checked when ``cross_check=True``), the
incremental route additionally yields UNSAT-core cycle witnesses and
escape-edge suggestions for the failing designs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.checking.graphs import DirectedGraph
from repro.core.deadlock import DeadlockQuerySession
from repro.core.dependency import routing_dependency_graph
from repro.core.instance import NoCInstance
from repro.network.port import Port


@dataclass
class Scenario:
    """One topology x routing x switching point of the sweep."""

    name: str
    instance: NoCInstance
    #: Scenarios with equal group share one incremental session (their
    #: topologies must have compatible port sets).  Defaults to the
    #: instance's topology shape.
    group: Optional[str] = None

    def group_key(self) -> str:
        if self.group is not None:
            return self.group
        topology = self.instance.topology
        return f"{type(topology).__name__}[{len(topology.ports)} ports]"


@dataclass
class ScenarioVerdict:
    """The batch driver's answer for one scenario."""

    scenario: str
    topology: str
    routing: str
    switching: str
    deadlock_free: bool
    #: Dependency edges of this scenario's routing function.
    edges: int
    #: Edges this scenario newly contributed to the shared encoding (0 for
    #: a scenario whose edges were all seen before -- its query is purely
    #: incremental).
    new_edges: int
    elapsed_seconds: float
    #: For deadlock-prone designs: the UNSAT-core cycle witness and the
    #: single-edge removals that would restore deadlock freedom.
    cycle_core: List[Tuple[Port, Port]] = field(default_factory=list)
    escape_edges: List[Tuple[Port, Port]] = field(default_factory=list)
    #: Which deadlock condition produced the verdict: ``"theorem1"``
    #: (whole-graph acyclicity) or ``"vc-escape"`` (the (V-1)/(V-2)
    #: escape-class condition of a virtual-channel scenario).
    condition: str = "theorem1"
    #: Virtual channels of the scenario (1 for the single-VC model).
    num_vcs: int = 1

    def to_json_dict(self) -> Dict[str, object]:
        """A JSON-serialisable summary of this verdict."""
        return {
            "scenario": self.scenario,
            "topology": self.topology,
            "routing": self.routing,
            "switching": self.switching,
            "condition": self.condition,
            "num_vcs": self.num_vcs,
            "deadlock_free": self.deadlock_free,
            "edges": self.edges,
            "new_edges": self.new_edges,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "cycle_core": [f"{s} -> {t}" for s, t in self.cycle_core],
            "escape_edges": [f"{s} -> {t}" for s, t in self.escape_edges],
        }


@dataclass
class PortfolioReport:
    """All verdicts of one portfolio run plus session statistics."""

    verdicts: List[ScenarioVerdict]
    elapsed_seconds: float
    #: Per topology group: solver statistics of the shared session.
    session_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def deadlock_free_count(self) -> int:
        return sum(1 for verdict in self.verdicts if verdict.deadlock_free)

    def to_json_dict(self) -> Dict[str, object]:
        """Machine-readable export: scenarios, verdicts, solver statistics.

        The payload is what bench trajectories track across PRs, so its
        shape is versioned via ``schema``.
        """
        return {
            "schema": 1,
            "kind": "repro-portfolio-report",
            "scenarios": [verdict.to_json_dict()
                          for verdict in self.verdicts],
            "summary": {
                "scenarios": len(self.verdicts),
                "deadlock_free": self.deadlock_free_count,
                "deadlock_prone": (len(self.verdicts)
                                   - self.deadlock_free_count),
                "elapsed_seconds": round(self.elapsed_seconds, 6),
            },
            "session_stats": {group: dict(stats)
                              for group, stats in self.session_stats.items()},
        }

    def write_json(self, path: str) -> None:
        """Write :meth:`to_json_dict` to ``path`` (pretty-printed)."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")

    def formatted(self) -> str:
        from repro.reporting.tables import format_table

        rows = []
        for verdict in self.verdicts:
            fixes = ", ".join(f"{s}->{t}" for s, t in verdict.escape_edges[:2])
            if len(verdict.escape_edges) > 2:
                fixes += ", ..."
            rows.append([
                verdict.scenario, verdict.routing, verdict.switching,
                "free" if verdict.deadlock_free else "DEADLOCK-PRONE",
                verdict.edges, verdict.new_edges,
                f"{verdict.elapsed_seconds * 1000:.1f}",
                fixes or "-",
            ])
        return format_table(
            ["scenario", "routing", "switching", "verdict", "dep edges",
             "new edges", "ms", "escape fixes"], rows)

    def summary(self) -> str:
        prone = len(self.verdicts) - self.deadlock_free_count
        return (f"portfolio: {len(self.verdicts)} scenarios, "
                f"{self.deadlock_free_count} deadlock-free, {prone} "
                f"deadlock-prone, {self.elapsed_seconds:.3f}s total")


def run_portfolio(scenarios: Sequence[Scenario],
                  seed: int = 2010,
                  analyse_failures: bool = True,
                  cross_check: bool = False) -> PortfolioReport:
    """Run every scenario through shared incremental deadlock sessions.

    ``analyse_failures`` additionally extracts the cycle core and the
    escape-edge suggestions for deadlock-prone scenarios (a handful of
    extra incremental solves each).  ``cross_check`` re-derives every
    verdict with the linear-time explicit check (DFS cycle search, or the
    explicit (V-1)/(V-2) checker for VC scenarios) and asserts agreement --
    the belt-and-braces mode used by the tests.

    Scenarios whose routing is a
    :class:`~repro.routing.escape.EscapeChannelRouting` are decided by the
    VC-granular escape condition: (V-1) by explicit enumeration, (V-2) as
    an incremental solve restricted to the escape-class edges of the shared
    universe.  Their group sessions therefore host *channel* vertices; mix
    VC and single-VC scenarios in one group only if their vertex universes
    agree.
    """
    from repro.routing.escape import EscapeChannelRouting

    start = time.perf_counter()
    sessions: Dict[str, DeadlockQuerySession] = {}
    known_edges: Dict[str, set] = {}
    verdicts: List[ScenarioVerdict] = []

    # Seed each group's session with the union of the group's vertex
    # universes, so scenarios over growing channel sets (1, 2, 4 VCs of one
    # topology) can share one encoding.
    group_vertices: Dict[str, Dict[Port, None]] = {}
    for scenario in scenarios:
        vertices = group_vertices.setdefault(scenario.group_key(), {})
        for port in scenario.instance.topology.ports:
            vertices.setdefault(port)

    for scenario in scenarios:
        scenario_start = time.perf_counter()
        instance = scenario.instance
        key = scenario.group_key()
        graph = routing_dependency_graph(instance.routing)
        if key not in sessions:
            base: DirectedGraph[Port] = DirectedGraph()
            for port in group_vertices[key]:
                base.add_vertex(port)
            sessions[key] = DeadlockQuerySession(base, name=key, seed=seed)
            known_edges[key] = set()
        session = sessions[key]
        edges = graph.edges()
        new_edges = 0
        for source, target in edges:
            if (source, target) not in known_edges[key]:
                session.add_edge(source, target)
                known_edges[key].add((source, target))
                new_edges += 1

        relation = (instance.routing
                    if isinstance(instance.routing, EscapeChannelRouting)
                    else None)
        coverage = None
        if relation is None:
            condition = "theorem1"
            num_vcs = 1
            query_edges = edges
            deadlock_free = session.is_deadlock_free_edges(edges)
        else:
            # The VC-granular Duato condition: explicit (V-1) coverage plus
            # the escape-class restriction of (V-2) on the shared session.
            from repro.core.dependency import class_edges
            from repro.core.obligations import check_v1_escape_coverage

            condition = "vc-escape"
            num_vcs = relation.num_vcs
            query_edges = class_edges(graph, relation.escape_vcs)
            coverage = check_v1_escape_coverage(relation)
            deadlock_free = (coverage.holds
                             and session.is_deadlock_free_edges(query_edges))

        cycle_core: List[Tuple[Port, Port]] = []
        escape: List[Tuple[Port, Port]] = []
        if not deadlock_free and analyse_failures:
            cycle_core = session.cycle_core_for(query_edges) or []
            escape = [edge for edge in cycle_core
                      if session.is_deadlock_free_edges(
                          e for e in query_edges if e != edge)]

        if cross_check:
            if relation is None:
                from repro.checking.graphs import find_cycle_dfs

                reference = find_cycle_dfs(graph).acyclic
            else:
                from repro.core.theorems import check_deadlock_freedom_vc

                reference = check_deadlock_freedom_vc(
                    relation, graph=graph, coverage=coverage).holds
            if reference != deadlock_free:
                raise AssertionError(
                    f"portfolio verdict disagrees with the explicit check "
                    f"for {scenario.name}: sat={deadlock_free} "
                    f"explicit={reference}")

        verdicts.append(ScenarioVerdict(
            scenario=scenario.name,
            topology=str(instance.topology),
            routing=instance.routing.name(),
            switching=instance.switching.name(),
            deadlock_free=deadlock_free,
            edges=len(edges),
            new_edges=new_edges,
            elapsed_seconds=time.perf_counter() - scenario_start,
            cycle_core=cycle_core,
            escape_edges=escape,
            condition=condition,
            num_vcs=num_vcs,
        ))

    return PortfolioReport(
        verdicts=verdicts,
        elapsed_seconds=time.perf_counter() - start,
        session_stats={key: session.solver_stats
                       for key, session in sessions.items()})


def standard_portfolio(mesh_sizes: Iterable[int] = (3, 4),
                       ring_sizes: Iterable[int] = (4,),
                       buffer_capacity: int = 2) -> List[Scenario]:
    """The library's standard sweep: every routing function on square
    meshes (wormhole and virtual cut-through for the paper's pair), plus
    the deadlock-free and deadlock-prone ring instantiations."""
    from repro.hermes import build_hermes_instance
    from repro.ringnoc import (
        build_chain_ring_instance,
        build_clockwise_ring_instance,
    )
    from repro.routing.adaptive import (
        FullyAdaptiveMinimalRouting,
        ZigZagRouting,
    )
    from repro.routing.turn_model import (
        NegativeFirstRouting,
        NorthLastRouting,
        WestFirstRouting,
    )
    from repro.routing.xy import XYRouting
    from repro.routing.yx import YXRouting
    from repro.network.mesh import Mesh2D
    from repro.switching.virtual_cut_through import VirtualCutThroughSwitching
    from repro.switching.wormhole import WormholeSwitching

    scenarios: List[Scenario] = []
    for size in mesh_sizes:
        mesh = Mesh2D(size, size)
        group = f"mesh-{size}x{size}"
        routings = [XYRouting(mesh), YXRouting(mesh),
                    WestFirstRouting(mesh), NorthLastRouting(mesh),
                    NegativeFirstRouting(mesh),
                    FullyAdaptiveMinimalRouting(mesh), ZigZagRouting(mesh)]
        for routing in routings:
            scenarios.append(Scenario(
                name=f"{group}/{routing.name()}/Swh",
                instance=build_hermes_instance(
                    size, size, buffer_capacity=buffer_capacity,
                    routing=routing),
                group=group))
        # The paper's pair of switching policies on the paper's routing.
        scenarios.append(Scenario(
            name=f"{group}/Rxy/Svct",
            instance=build_hermes_instance(
                size, size, buffer_capacity=buffer_capacity,
                routing=XYRouting(mesh),
                switching=VirtualCutThroughSwitching()),
            group=group))
    for size in ring_sizes:
        scenarios.append(Scenario(
            name=f"ring-{size}/chain",
            instance=build_chain_ring_instance(
                size, buffer_capacity=buffer_capacity),
            group=f"ring-{size}"))
        scenarios.append(Scenario(
            name=f"ring-{size}/clockwise",
            instance=build_clockwise_ring_instance(size),
            group=f"ring-{size}"))
    return scenarios


def vc_escape_portfolio(mesh_sizes: Iterable[int] = (3,),
                        torus_sizes: Iterable[int] = (4,),
                        vc_counts: Sequence[int] = (1, 2, 4),
                        buffer_capacity: int = 2) -> List[Scenario]:
    """The virtual-channel escape sweep: one shared session per topology.

    For every mesh size, fully-adaptive minimal routing with an XY escape
    VC at each VC count; for every torus size, dimension-order routing with
    a dateline escape pair (plus an adaptive class from 3 VCs up).  All VC
    counts of one topology share a group (their channel universes nest), so
    the sweep exercises the incremental encoding across growing VC counts:
    the 1-VC verdict is deadlock-prone, the multi-VC verdicts are proved
    free by the escape condition on the same solver.
    """
    from repro.vcnoc import build_vc_mesh_instance, build_vc_torus_instance

    scenarios: List[Scenario] = []
    for size in mesh_sizes:
        group = f"vc-mesh-{size}x{size}"
        for vcs in vc_counts:
            scenarios.append(Scenario(
                name=f"{group}/Radaptive+esc-xy/{vcs}vc",
                instance=build_vc_mesh_instance(
                    size, size, num_vcs=vcs,
                    buffer_capacity=buffer_capacity),
                group=group))
    for size in torus_sizes:
        group = f"vc-torus-{size}x{size}"
        for vcs in vc_counts:
            scenarios.append(Scenario(
                name=f"{group}/Rxy-torus+esc-dateline/{vcs}vc",
                instance=build_vc_torus_instance(
                    size, size, num_vcs=vcs,
                    buffer_capacity=buffer_capacity),
                group=group))
    return scenarios
