"""Batch verification portfolios: many scenarios, one incremental solver.

The paper verifies one instantiation (HERMES / XY / wormhole).  A
production verification flow instead sweeps a *portfolio* of
topology x routing x switching scenarios -- is each candidate design
deadlock-free, and if not, which escape edges would fix it?  This module is
the batch driver for that sweep, built on the incremental CDCL engine:

* scenarios are grouped by topology;
* per topology group, **one** :class:`~repro.core.deadlock.DeadlockQuerySession`
  hosts the union of every scenario's dependency edges, each behind a
  selector variable (encoded the first time a scenario contributes it);
* each scenario's verdict is then a single solve under assumptions --
  clauses learned while deciding one routing function speed up the next.

Compare :func:`run_portfolio` (shared incremental sessions) with
``check_c3_routing_induced`` in a loop (fresh graph check per scenario):
the verdicts agree (cross-checked when ``cross_check=True``), the
incremental route additionally yields UNSAT-core cycle witnesses and
escape-edge suggestions for the failing designs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.checking.graphs import DirectedGraph
from repro.core.deadlock import DeadlockQuerySession
from repro.core.dependency import routing_dependency_graph
from repro.core.instance import NoCInstance
from repro.network.port import Port


@dataclass
class Scenario:
    """One topology x routing x switching point of the sweep."""

    name: str
    instance: NoCInstance
    #: Scenarios with equal group share one incremental session (their
    #: topologies must have compatible port sets).  Defaults to the
    #: instance's topology shape.
    group: Optional[str] = None

    def group_key(self) -> str:
        if self.group is not None:
            return self.group
        topology = self.instance.topology
        return f"{type(topology).__name__}[{len(topology.ports)} ports]"


@dataclass
class ScenarioVerdict:
    """The batch driver's answer for one scenario."""

    scenario: str
    topology: str
    routing: str
    switching: str
    deadlock_free: bool
    #: Dependency edges of this scenario's routing function.
    edges: int
    #: Edges this scenario newly contributed to the shared encoding (0 for
    #: a scenario whose edges were all seen before -- its query is purely
    #: incremental).
    new_edges: int
    elapsed_seconds: float
    #: For deadlock-prone designs: the UNSAT-core cycle witness and the
    #: single-edge removals that would restore deadlock freedom.
    cycle_core: List[Tuple[Port, Port]] = field(default_factory=list)
    escape_edges: List[Tuple[Port, Port]] = field(default_factory=list)


@dataclass
class PortfolioReport:
    """All verdicts of one portfolio run plus session statistics."""

    verdicts: List[ScenarioVerdict]
    elapsed_seconds: float
    #: Per topology group: solver statistics of the shared session.
    session_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def deadlock_free_count(self) -> int:
        return sum(1 for verdict in self.verdicts if verdict.deadlock_free)

    def formatted(self) -> str:
        from repro.reporting.tables import format_table

        rows = []
        for verdict in self.verdicts:
            fixes = ", ".join(f"{s}->{t}" for s, t in verdict.escape_edges[:2])
            if len(verdict.escape_edges) > 2:
                fixes += ", ..."
            rows.append([
                verdict.scenario, verdict.routing, verdict.switching,
                "free" if verdict.deadlock_free else "DEADLOCK-PRONE",
                verdict.edges, verdict.new_edges,
                f"{verdict.elapsed_seconds * 1000:.1f}",
                fixes or "-",
            ])
        return format_table(
            ["scenario", "routing", "switching", "verdict", "dep edges",
             "new edges", "ms", "escape fixes"], rows)

    def summary(self) -> str:
        prone = len(self.verdicts) - self.deadlock_free_count
        return (f"portfolio: {len(self.verdicts)} scenarios, "
                f"{self.deadlock_free_count} deadlock-free, {prone} "
                f"deadlock-prone, {self.elapsed_seconds:.3f}s total")


def run_portfolio(scenarios: Sequence[Scenario],
                  seed: int = 2010,
                  analyse_failures: bool = True,
                  cross_check: bool = False) -> PortfolioReport:
    """Run every scenario through shared incremental deadlock sessions.

    ``analyse_failures`` additionally extracts the cycle core and the
    escape-edge suggestions for deadlock-prone scenarios (a handful of
    extra incremental solves each).  ``cross_check`` re-derives every
    verdict with the linear-time DFS cycle check and asserts agreement --
    the belt-and-braces mode used by the tests.
    """
    start = time.perf_counter()
    sessions: Dict[str, DeadlockQuerySession] = {}
    known_edges: Dict[str, set] = {}
    verdicts: List[ScenarioVerdict] = []

    for scenario in scenarios:
        scenario_start = time.perf_counter()
        instance = scenario.instance
        key = scenario.group_key()
        graph = routing_dependency_graph(instance.routing)
        if key not in sessions:
            # Seed the session with the topology's port set and this first
            # scenario's edges; later scenarios grow the edge universe.
            base: DirectedGraph[Port] = DirectedGraph()
            for port in instance.topology.ports:
                base.add_vertex(port)
            sessions[key] = DeadlockQuerySession(base, name=key, seed=seed)
            known_edges[key] = set()
        session = sessions[key]
        edges = graph.edges()
        new_edges = 0
        for source, target in edges:
            if (source, target) not in known_edges[key]:
                session.add_edge(source, target)
                known_edges[key].add((source, target))
                new_edges += 1
        deadlock_free = session.is_deadlock_free_edges(edges)

        cycle_core: List[Tuple[Port, Port]] = []
        escape: List[Tuple[Port, Port]] = []
        if not deadlock_free and analyse_failures:
            cycle_core = session.cycle_core_for(edges) or []
            escape = [edge for edge in cycle_core
                      if session.is_deadlock_free_edges(
                          e for e in edges if e != edge)]

        if cross_check:
            from repro.checking.graphs import find_cycle_dfs

            reference = find_cycle_dfs(graph).acyclic
            if reference != deadlock_free:
                raise AssertionError(
                    f"portfolio verdict disagrees with DFS for "
                    f"{scenario.name}: sat={deadlock_free} dfs={reference}")

        verdicts.append(ScenarioVerdict(
            scenario=scenario.name,
            topology=type(instance.topology).__name__,
            routing=instance.routing.name(),
            switching=instance.switching.name(),
            deadlock_free=deadlock_free,
            edges=len(edges),
            new_edges=new_edges,
            elapsed_seconds=time.perf_counter() - scenario_start,
            cycle_core=cycle_core,
            escape_edges=escape,
        ))

    return PortfolioReport(
        verdicts=verdicts,
        elapsed_seconds=time.perf_counter() - start,
        session_stats={key: session.solver_stats
                       for key, session in sessions.items()})


def standard_portfolio(mesh_sizes: Iterable[int] = (3, 4),
                       ring_sizes: Iterable[int] = (4,),
                       buffer_capacity: int = 2) -> List[Scenario]:
    """The library's standard sweep: every routing function on square
    meshes (wormhole and virtual cut-through for the paper's pair), plus
    the deadlock-free and deadlock-prone ring instantiations."""
    from repro.hermes import build_hermes_instance
    from repro.ringnoc import (
        build_chain_ring_instance,
        build_clockwise_ring_instance,
    )
    from repro.routing.adaptive import (
        FullyAdaptiveMinimalRouting,
        ZigZagRouting,
    )
    from repro.routing.turn_model import (
        NegativeFirstRouting,
        NorthLastRouting,
        WestFirstRouting,
    )
    from repro.routing.xy import XYRouting
    from repro.routing.yx import YXRouting
    from repro.network.mesh import Mesh2D
    from repro.switching.virtual_cut_through import VirtualCutThroughSwitching
    from repro.switching.wormhole import WormholeSwitching

    scenarios: List[Scenario] = []
    for size in mesh_sizes:
        mesh = Mesh2D(size, size)
        group = f"mesh-{size}x{size}"
        routings = [XYRouting(mesh), YXRouting(mesh),
                    WestFirstRouting(mesh), NorthLastRouting(mesh),
                    NegativeFirstRouting(mesh),
                    FullyAdaptiveMinimalRouting(mesh), ZigZagRouting(mesh)]
        for routing in routings:
            scenarios.append(Scenario(
                name=f"{group}/{routing.name()}/Swh",
                instance=build_hermes_instance(
                    size, size, buffer_capacity=buffer_capacity,
                    routing=routing),
                group=group))
        # The paper's pair of switching policies on the paper's routing.
        scenarios.append(Scenario(
            name=f"{group}/Rxy/Svct",
            instance=build_hermes_instance(
                size, size, buffer_capacity=buffer_capacity,
                routing=XYRouting(mesh),
                switching=VirtualCutThroughSwitching()),
            group=group))
    for size in ring_sizes:
        scenarios.append(Scenario(
            name=f"ring-{size}/chain",
            instance=build_chain_ring_instance(
                size, buffer_capacity=buffer_capacity),
            group=f"ring-{size}"))
        scenarios.append(Scenario(
            name=f"ring-{size}/clockwise",
            instance=build_clockwise_ring_instance(size),
            group=f"ring-{size}"))
    return scenarios
