"""Batch verification portfolios: many scenarios, one incremental solver.

The paper verifies one instantiation (HERMES / XY / wormhole).  A
production verification flow instead sweeps a *portfolio* of
topology x routing x switching scenarios -- is each candidate design
deadlock-free, and if not, which escape edges would fix it?  This module is
the batch driver for that sweep, built on the incremental CDCL engine:

* scenarios are described declaratively (:class:`~repro.core.spec.ScenarioSpec`
  via :func:`~repro.core.spec.expand_matrix`) and resolved lazily in the
  worker that runs them, through the per-process construction cache;
* scenarios are grouped by topology;
* per topology group, **one** :class:`~repro.core.deadlock.DeadlockQuerySession`
  hosts the union of every scenario's dependency edges, each behind a
  selector variable (encoded the first time a scenario contributes it);
* each scenario's verdict is then a single solve under assumptions --
  clauses learned while deciding one routing function speed up the next.

Compare :func:`run_portfolio` (shared incremental sessions) with
``check_c3_routing_induced`` in a loop (fresh graph check per scenario):
the verdicts agree (cross-checked when ``cross_check=True``), the
incremental route additionally yields UNSAT-core cycle witnesses and
escape-edge suggestions for the failing designs.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.checking.graphs import DirectedGraph
from repro.checking.sat import SolverTimeout
from repro.core.cache import instance_cache
from repro.core.checkpoint import (
    CheckpointJournal,
    engine_fingerprint,
    make_run_key,
    scenario_fingerprint,
)
from repro.core.store import VerdictStore
from repro.core.deadlock import DeadlockQuerySession
from repro.core.dependency import routing_dependency_graph
from repro.core.faultplan import execute_directive, resolve_fault_plan
from repro.core.instance import NoCInstance
from repro.core.spec import ScenarioSpec, expand_matrix
from repro.network.port import Port

#: Verdict statuses a scenario can end a run with: ``"ok"`` (the solver
#: decided it), ``"timeout"`` (a group/run deadline or solver budget cut
#: it off) or ``"error"`` (its group's worker crashed or raised and every
#: retry was exhausted).
VERDICT_STATUSES = ("ok", "timeout", "error")

#: Default bound on pool rebuilds after worker crashes before the run
#: degrades to in-process serial execution.
DEFAULT_MAX_RETRIES = 2

#: Base (seconds) of the deterministic exponential backoff between pool
#: rebuilds: ``base * 2**(retry-1)``, capped at :data:`RETRY_BACKOFF_CAP`.
DEFAULT_RETRY_BACKOFF = 0.1
RETRY_BACKOFF_CAP = 2.0


@dataclass
class Scenario:
    """One topology x routing x switching point of the sweep.

    A scenario is backed either by an already-built ``instance`` or --
    the cheap, preferred form -- by a declarative ``spec``
    (:class:`~repro.core.spec.ScenarioSpec`).  Spec-backed scenarios ship
    to portfolio worker processes as a few primitives and are resolved
    lazily through the per-process
    :class:`~repro.core.cache.InstanceCache`, so the parent never builds
    (or pickles) the heavy network objects.
    """

    name: str
    instance: Optional[NoCInstance] = None
    #: Scenarios with equal group share one incremental session (their
    #: topologies must have compatible port sets).  Defaults to the spec's
    #: group, else to the instance's topology shape.
    group: Optional[str] = None
    spec: Optional[ScenarioSpec] = None

    def __post_init__(self) -> None:
        if self.instance is None and self.spec is None:
            raise ValueError(
                f"scenario {self.name!r} needs an instance or a spec")

    @classmethod
    def from_spec(cls, spec: ScenarioSpec,
                  name: Optional[str] = None,
                  group: Optional[str] = None) -> "Scenario":
        """A lazily-resolved scenario described by ``spec``."""
        return cls(name=name or spec.scenario_name(), instance=None,
                   group=group, spec=spec)

    def resolve(self) -> NoCInstance:
        """The scenario's instance (built through the process cache).

        Deliberately does *not* store the built instance on the scenario:
        a resolved spec-backed scenario stays cheap to pickle.
        """
        if self.instance is not None:
            return self.instance
        return instance_cache().instance_for(self.spec)

    def group_key(self) -> str:
        if self.group is not None:
            return self.group
        if self.spec is not None:
            return self.spec.group_key()
        topology = self.instance.topology
        return f"{type(topology).__name__}[{len(topology.ports)} ports]"


def scenarios_from_specs(specs: Iterable[ScenarioSpec]) -> List[Scenario]:
    """Wrap every spec in a :class:`Scenario` (names derived from specs)."""
    return [Scenario.from_spec(spec) for spec in specs]


def shard_index_of(group_key: str, shard_count: int) -> int:
    """The shard a scenario group belongs to, stable across processes.

    Uses CRC-32 of the group key -- *not* Python's salted ``hash()`` -- so
    every worker, machine and CI job agrees on the partition.  Sharding is
    group-granular by construction: a group's scenarios always land on one
    shard, so sharded runs never split an incremental session.
    """
    if shard_count < 1:
        raise ValueError("shard count must be at least 1")
    return zlib.crc32(group_key.encode("utf-8")) % shard_count


#: Recognised ``shard_balance`` policies of :func:`run_portfolio`.
SHARD_BALANCE_POLICIES = ("hash", "weighted")


def scenario_cost(scenario: Scenario) -> float:
    """Deterministic relative cost estimate of one scenario.

    Estimated from the spec's dimensions and channel counts: the number
    of network ports drives both the encoding size (ports x counter
    bits) and the dependency-edge count, and observed solver work grows
    super-linearly in the port count on the shipped topologies -- so the
    model is ``ports ** 1.5``.  Instance-backed scenarios read their real
    port count; spec-backed scenarios *estimate* it from dims/VCs alone,
    so cost assignment never needs to build an instance.
    """
    spec = scenario.spec
    if spec is None:
        ports = len(scenario.instance.topology.ports)
        return float(ports) ** 1.5
    nodes = 1
    for dim in spec.dims:
        nodes *= int(dim)
    # Port model: rings have 2 cardinal ports per node, 2D kinds 4; one
    # local port each; VC kinds multiply the cardinal channels.
    cardinal = 2 if len(spec.dims) == 1 else 4
    ports = nodes * (cardinal * max(1, int(spec.num_vcs)) + 1)
    return float(ports) ** 1.5


def weighted_shard_assignment(group_costs: Dict[str, float],
                              shard_count: int) -> Dict[str, int]:
    """LPT (longest-processing-time) group-to-shard assignment.

    Groups are placed heaviest-first onto the currently lightest shard --
    the classic 4/3-approximation for makespan -- with every tie broken
    deterministically (equal costs: lexicographic group key; equal loads:
    lowest shard index), so all shards of a run agree on the partition
    without communicating, exactly like :func:`shard_index_of`.
    """
    if shard_count < 1:
        raise ValueError("shard count must be at least 1")
    loads = [0.0] * shard_count
    assignment: Dict[str, int] = {}
    for key, cost in sorted(group_costs.items(),
                            key=lambda item: (-item[1], item[0])):
        shard = min(range(shard_count), key=lambda index: loads[index])
        assignment[key] = shard
        loads[shard] += cost
    return assignment


@dataclass
class ScenarioVerdict:
    """The batch driver's answer for one scenario.

    ``status`` tells whether the verdict is a real decision (``"ok"``) or
    a structured failure record: ``"timeout"`` when a deadline cut the
    scenario off, ``"error"`` when its group failed for good.  For
    non-``ok`` verdicts ``deadlock_free`` is ``None`` and ``error``
    carries the deterministic reason string.
    """

    scenario: str
    topology: str
    routing: str
    switching: str
    deadlock_free: Optional[bool]
    #: Dependency edges of this scenario's routing function.
    edges: int
    #: Edges this scenario newly contributed to the shared encoding (0 for
    #: a scenario whose edges were all seen before -- its query is purely
    #: incremental).
    new_edges: int
    elapsed_seconds: float
    #: For deadlock-prone designs: the UNSAT-core cycle witness and the
    #: single-edge removals that would restore deadlock freedom.
    cycle_core: List[Tuple[Port, Port]] = field(default_factory=list)
    escape_edges: List[Tuple[Port, Port]] = field(default_factory=list)
    #: Which deadlock condition produced the verdict: ``"theorem1"``
    #: (whole-graph acyclicity) or ``"vc-escape"`` (the (V-1)/(V-2)
    #: escape-class condition of a virtual-channel scenario).
    condition: str = "theorem1"
    #: Virtual channels of the scenario (1 for the single-VC model).
    num_vcs: int = 1
    #: Solver work this scenario's queries cost on the shared session
    #: (stats-counter deltas: decisions, propagations, conflicts, ...).
    solver: Dict[str, int] = field(default_factory=dict)
    #: The originating :meth:`~repro.core.spec.ScenarioSpec.to_dict` image
    #: for spec-backed scenarios (``None`` for hand-built instances).
    spec: Optional[Dict[str, object]] = None
    #: ``(index, count)`` of the shard that ran this scenario (``None`` in
    #: an unsharded run).
    shard: Optional[Tuple[int, int]] = None
    #: Submission index of the scenario in the *full* scenario list (also
    #: meaningful in a sharded run, where it orders the merged verdicts).
    index: int = -1
    #: ``"ok"``, ``"timeout"`` or ``"error"`` (see class docstring).
    status: str = "ok"
    #: Deterministic failure reason for non-``ok`` verdicts.
    error: Optional[str] = None

    @staticmethod
    def _format_edge(entry) -> str:
        # Replayed verdicts (checkpoint journals) carry cores as the
        # already-formatted strings of their JSON image.
        if isinstance(entry, str):
            return entry
        source, target = entry
        return f"{source} -> {target}"

    def to_json_dict(self) -> Dict[str, object]:
        """A JSON-serialisable summary of this verdict (schema 4 shape)."""
        return {
            "scenario": self.scenario,
            "topology": self.topology,
            "routing": self.routing,
            "switching": self.switching,
            "condition": self.condition,
            "num_vcs": self.num_vcs,
            "status": self.status,
            "error": self.error,
            "deadlock_free": self.deadlock_free,
            "edges": self.edges,
            "new_edges": self.new_edges,
            "wall_time_s": round(self.elapsed_seconds, 6),
            "solver": dict(self.solver),
            "cycle_core": [self._format_edge(entry)
                           for entry in self.cycle_core],
            "escape_edges": [self._format_edge(entry)
                             for entry in self.escape_edges],
            "spec": dict(self.spec) if self.spec is not None else None,
            "shard": list(self.shard) if self.shard is not None else None,
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object],
                       index: Optional[int] = None) -> "ScenarioVerdict":
        """Rebuild a verdict from its :meth:`to_json_dict` image.

        The inverse used by checkpoint resume: cores/escape edges stay in
        their formatted string form (:meth:`to_json_dict` passes them
        through unchanged), so a replayed verdict re-serialises
        byte-identically to the original.
        """
        shard = payload.get("shard")
        return cls(
            scenario=payload["scenario"],
            topology=payload["topology"],
            routing=payload["routing"],
            switching=payload["switching"],
            deadlock_free=payload["deadlock_free"],
            edges=int(payload["edges"]),
            new_edges=int(payload["new_edges"]),
            elapsed_seconds=float(payload.get("wall_time_s", 0.0)),
            cycle_core=list(payload.get("cycle_core") or []),
            escape_edges=list(payload.get("escape_edges") or []),
            condition=str(payload.get("condition", "theorem1")),
            num_vcs=int(payload.get("num_vcs", 1)),
            solver=dict(payload.get("solver") or {}),
            spec=payload.get("spec"),
            shard=tuple(shard) if shard is not None else None,
            index=(int(payload.get("index", -1))
                   if index is None else index),
            status=str(payload.get("status", "ok")),
            error=payload.get("error"),
        )


@dataclass
class PortfolioReport:
    """All verdicts of one portfolio run plus session statistics."""

    verdicts: List[ScenarioVerdict]
    elapsed_seconds: float
    #: Per topology group: solver statistics of the shared session.
    session_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Worker processes the run was scheduled across (1 = in-process serial).
    jobs: int = 1
    #: Construction-cache counters accumulated during the run (summed over
    #: the workers in a parallel run).
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: ``(index, count)`` of a sharded run (``None``: the whole matrix).
    shard: Optional[Tuple[int, int]] = None
    #: How the run survived: retry/degradation/replay bookkeeping
    #: (``crash_retries``, ``degraded_serial``, ``group_attempts``,
    #: ``replayed_groups``).  Environment history, not workload content --
    #: stripped by :meth:`comparable_dict` like the cache counters.
    recovery: Dict[str, object] = field(default_factory=dict)
    #: Verdict-store session counters (:meth:`VerdictStore.stats`) when a
    #: store was attached; empty otherwise.  Environment history like
    #: :attr:`recovery` -- present in :meth:`to_json_dict` only for runs
    #: that used a store and always stripped by :meth:`comparable_dict`,
    #: so cold and warm runs stay ``==``-comparable.
    store_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def deadlock_free_count(self) -> int:
        return sum(1 for verdict in self.verdicts
                   if verdict.status == "ok" and verdict.deadlock_free)

    @property
    def deadlock_prone_count(self) -> int:
        return sum(1 for verdict in self.verdicts
                   if verdict.status == "ok" and not verdict.deadlock_free)

    def status_counts(self) -> Dict[str, int]:
        """Verdict count per status (every status key always present)."""
        counts = {status: 0 for status in VERDICT_STATUSES}
        for verdict in self.verdicts:
            counts[verdict.status] = counts.get(verdict.status, 0) + 1
        return counts

    @property
    def failure_count(self) -> int:
        """Verdicts that are not real decisions (timeout or error)."""
        return sum(1 for verdict in self.verdicts
                   if verdict.status != "ok")

    def to_json_dict(self) -> Dict[str, object]:
        """Machine-readable export: scenarios, verdicts, solver statistics.

        The payload is what bench trajectories track across PRs, so its
        shape is versioned via ``schema``.  Schema 4 adds per-scenario
        ``status``/``error`` (graceful degradation: a failed group yields
        structured verdicts, not a lost report), the ``timeouts``/
        ``errors`` summary counters and the run-level ``recovery``
        record, plus -- only for runs that attached a verdict store -- a
        ``store`` counter block (conditional, so store-less payloads keep
        the historical schema-4 key set); schema 3 embedded the originating spec dict and the shard
        assignment per scenario; schema 2 added per-scenario
        ``wall_time_s`` and ``solver`` stats deltas, run-level ``jobs``
        and cache counters.
        """
        statuses = self.status_counts()
        payload: Dict[str, object] = {
            "schema": 4,
            "kind": "repro-portfolio-report",
            "jobs": self.jobs,
            "shard": list(self.shard) if self.shard is not None else None,
            "scenarios": [verdict.to_json_dict()
                          for verdict in self.verdicts],
            "summary": {
                "scenarios": len(self.verdicts),
                "deadlock_free": self.deadlock_free_count,
                "deadlock_prone": self.deadlock_prone_count,
                "timeouts": statuses["timeout"],
                "errors": statuses["error"],
                "elapsed_seconds": round(self.elapsed_seconds, 6),
                "jobs": self.jobs,
                "cache_hits": int(self.cache_stats.get("hits", 0)),
                "cache_misses": int(self.cache_stats.get("misses", 0)),
            },
            "session_stats": {group: dict(stats)
                              for group, stats in self.session_stats.items()},
            "cache": dict(self.cache_stats),
            "recovery": dict(self.recovery),
        }
        if self.store_stats:
            # Conditional on purpose: store-less runs keep the exact
            # schema-4 key set older consumers pin.
            payload["store"] = dict(self.store_stats)
        return payload

    def comparable_dict(self) -> Dict[str, object]:
        """The deterministic projection of :meth:`to_json_dict`.

        Serial and parallel runs of the same scenario list produce
        *identical* verdicts, ordering, cores and solver statistics; only
        wall times, the job count and the cache counters (which depend on
        process boundaries and cross-group sharing) legitimately differ.
        Scheduling artefacts -- the shard markers and the originating spec
        dicts -- are stripped too, so a matrix-expanded run can be compared
        bit for bit against the same scenarios built by hand, and the
        merged shard reports against the unsharded run, with one ``==``.
        """
        payload = self.to_json_dict()
        del payload["jobs"]
        del payload["cache"]
        del payload["shard"]
        del payload["recovery"]
        payload.pop("store", None)
        for scenario in payload["scenarios"]:
            del scenario["wall_time_s"]
            del scenario["spec"]
            del scenario["shard"]
        summary = payload["summary"]
        del summary["elapsed_seconds"]
        del summary["jobs"]
        del summary["cache_hits"]
        del summary["cache_misses"]
        return payload

    def write_json(self, path: str) -> None:
        """Write :meth:`to_json_dict` to ``path`` (pretty-printed)."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")

    def formatted(self) -> str:
        from repro.reporting.tables import format_table, verdict_cell

        rows = []
        for verdict in self.verdicts:
            fixes = ", ".join(verdict._format_edge(entry).replace(" ", "")
                              for entry in verdict.escape_edges[:2])
            if len(verdict.escape_edges) > 2:
                fixes += ", ..."
            rows.append([
                verdict.scenario, verdict.routing, verdict.switching,
                verdict_cell(verdict.status, verdict.deadlock_free),
                verdict.edges, verdict.new_edges,
                f"{verdict.elapsed_seconds * 1000:.1f}",
                fixes or "-",
            ])
        return format_table(
            ["scenario", "routing", "switching", "verdict", "dep edges",
             "new edges", "ms", "escape fixes"], rows)

    def summary(self) -> str:
        statuses = self.status_counts()
        shard = (f" [shard {self.shard[0]}/{self.shard[1]}]"
                 if self.shard is not None else "")
        failures = ""
        if statuses["timeout"] or statuses["error"]:
            failures = (f", {statuses['timeout']} timed out, "
                        f"{statuses['error']} errored")
        return (f"portfolio{shard}: {len(self.verdicts)} scenarios, "
                f"{self.deadlock_free_count} deadlock-free, "
                f"{self.deadlock_prone_count} deadlock-prone{failures}, "
                f"{self.elapsed_seconds:.3f}s total")


def merge_shard_reports(reports: Sequence[PortfolioReport]
                        ) -> PortfolioReport:
    """Merge the reports of a sharded run back into one portfolio report.

    The shards of one matrix partition the scenario groups, so their
    verdict sets are disjoint and their union is the unsharded run; this
    helper re-interleaves the verdicts by original submission index and
    re-unions the per-group session statistics.  The merged report's
    :meth:`~PortfolioReport.comparable_dict` equals the unsharded run's --
    the contract the sharded CI smoke job asserts.
    """
    shards = {report.shard for report in reports}
    if shards and None not in shards:
        # Every input knows its (i, n): demand one complete shard set, so
        # a lost shard artifact cannot silently masquerade as a full run.
        counts = {count for _, count in shards}
        if len(counts) != 1:
            raise ValueError(f"shard reports disagree on the shard count: "
                             f"{sorted(counts)}")
        count = counts.pop()
        missing = sorted(set(range(count)) - {index for index, _ in shards})
        if missing:
            raise ValueError(f"incomplete shard set: missing shard(s) "
                             f"{missing} of {count}")
    verdicts = sorted((verdict for report in reports
                       for verdict in report.verdicts),
                      key=lambda verdict: verdict.index)
    indices = [verdict.index for verdict in verdicts]
    if len(set(indices)) != len(indices):
        from collections import Counter

        duplicates = sorted(index for index, count
                            in Counter(indices).items() if count > 1)
        raise ValueError(f"shard reports overlap: duplicate scenario "
                         f"indices {duplicates}")
    session_stats: Dict[str, Dict[str, int]] = {}
    cache_stats = {"hits": 0, "misses": 0}
    for report in reports:
        overlap = set(report.session_stats) & set(session_stats)
        if overlap:
            raise ValueError(f"shard reports overlap on groups "
                             f"{sorted(overlap)}")
        session_stats.update(report.session_stats)
        cache_stats["hits"] += int(report.cache_stats.get("hits", 0))
        cache_stats["misses"] += int(report.cache_stats.get("misses", 0))
    recovery: Dict[str, object] = {}
    if any(report.recovery for report in reports):
        group_attempts: Dict[str, int] = {}
        replayed: List[str] = []
        for report in reports:
            group_attempts.update(report.recovery.get("group_attempts", {}))
            replayed.extend(report.recovery.get("replayed_groups", []))
        recovery = {
            "crash_retries": sum(int(report.recovery.get("crash_retries", 0))
                                 for report in reports),
            "degraded_serial": any(report.recovery.get("degraded_serial")
                                   for report in reports),
            "group_attempts": group_attempts,
            "replayed_groups": sorted(replayed),
        }
    store_stats: Dict[str, object] = {}
    if any(report.store_stats for report in reports):
        from repro.core.store import STORE_COUNTERS

        modes = sorted({str(report.store_stats.get("mode"))
                        for report in reports if report.store_stats})
        store_stats = {"mode": modes[0] if len(modes) == 1 else "mixed"}
        for counter in STORE_COUNTERS:
            store_stats[counter] = sum(
                int(report.store_stats.get(counter, 0))
                for report in reports)
        store_stats["replayed_groups"] = sorted(
            group for report in reports
            for group in report.store_stats.get("replayed_groups", []))
    return PortfolioReport(
        verdicts=verdicts,
        elapsed_seconds=sum(report.elapsed_seconds for report in reports),
        session_stats=session_stats,
        jobs=max((report.jobs for report in reports), default=1),
        cache_stats=cache_stats,
        shard=None,
        recovery=recovery,
        store_stats=store_stats)


def _failure_verdict(index: int, scenario: Scenario, group_key: str,
                     shard: Optional[Tuple[int, int]], status: str,
                     error: str, instance: Optional[NoCInstance] = None,
                     solver: Optional[Dict[str, int]] = None,
                     elapsed: float = 0.0) -> ScenarioVerdict:
    """A structured non-``ok`` verdict for a scenario its group failed on.

    Identity fields come from the resolved instance when the failure
    struck mid-group, else from the declarative spec tokens -- never from
    wall-clock or process state, so failure verdicts are exactly as
    deterministic as decisions.
    """
    spec = scenario.spec
    if instance is not None:
        topology = str(instance.topology)
        routing = instance.routing.name()
        switching = instance.switching.name()
    elif spec is not None:
        topology = spec.group_key()
        routing = spec.routing or "-"
        switching = spec.switching or "-"
    else:
        topology = group_key
        routing = switching = "-"
    return ScenarioVerdict(
        scenario=scenario.name,
        topology=topology,
        routing=routing,
        switching=switching,
        deadlock_free=None,
        edges=0,
        new_edges=0,
        elapsed_seconds=elapsed,
        condition="none",
        num_vcs=spec.num_vcs if spec is not None else 1,
        solver=dict(solver or {}),
        spec=spec.to_dict() if spec is not None else None,
        shard=shard,
        index=index,
        status=status,
        error=error,
    )


def _run_group(payload: Tuple,
               trace=None) -> Tuple[str, List[Tuple[int, ScenarioVerdict]],
                                    Dict[str, int], Dict[str, int]]:
    """Run one scenario group through one shared incremental session.

    ``payload`` is a single picklable tuple ``(group_key, indexed_scenarios,
    seed, analyse_failures, cross_check, shard[, budget_s, fault_directive,
    parent_pid])`` so the function can be shipped as-is to a
    :class:`~concurrent.futures.ProcessPoolExecutor` worker.  Spec-backed
    scenarios arrive as cheap declarative specs and are resolved *here*,
    through the worker's own :class:`~repro.core.cache.InstanceCache`; the
    session's vertex universe is the union of the group's topologies,
    enumerated in submission order.  Scenarios of one group are always
    processed in their original submission order by exactly this code path,
    whether the portfolio runs serially or across workers -- which is what
    makes parallel runs bit-for-bit reproductions of serial ones (see
    :meth:`PortfolioReport.comparable_dict`).

    The three optional trailing payload fields carry the fault-tolerance
    contract: ``budget_s`` arms a cooperative group deadline (checked
    between instance builds, at scenario starts, and -- via
    :meth:`~repro.core.deadlock.DeadlockQuerySession.set_interrupt` --
    every few dozen conflicts *inside* a running solve); ``fault_directive``
    is a test-only injected failure (see :mod:`repro.core.faultplan`);
    ``parent_pid`` lets the worker tell whether it is sacrificial (kill and
    hang directives never fire in the orchestrating process).

    A group never aborts the run: a :class:`SolverTimeout` (budget or
    injected) or any other exception downgrades the unfinished scenarios
    to structured ``timeout``/``error`` verdicts -- completed scenarios
    keep their decisions, the in-flight scenario keeps its partial solver
    delta, and the function *returns* normally.

    ``trace`` (a :class:`~repro.core.trace.TraceWriter`, serial runs only
    -- writers cannot cross the process-pool boundary) opens a
    ``scenario_begin``/``scenario_end`` span per scenario, nesting the
    session's solver/oracle events, and closes the group with a
    ``session_summary`` carrying the shared session's aggregate counters.
    A cut-off group additionally emits ``group_timeout``/``group_error``
    with the deterministic reason.

    Returns the group key, the ``(original_index, verdict)`` pairs, the
    group session's solver statistics, and the construction-cache counter
    deltas the group accounted for.
    """
    from repro.routing.escape import EscapeChannelRouting

    group_key, indexed_scenarios, seed, analyse_failures, \
        cross_check, shard = payload[:6]
    budget_s = payload[6] if len(payload) > 6 else None
    directive = payload[7] if len(payload) > 7 else None
    parent_pid = payload[8] if len(payload) > 8 else os.getpid()
    in_worker = os.getpid() != parent_pid

    cache = instance_cache()
    cache_hits_before = cache.hits
    cache_misses_before = cache.misses

    deadline = (time.monotonic() + budget_s
                if budget_s is not None else None)

    def interrupt() -> Optional[str]:
        if deadline is not None and time.monotonic() >= deadline:
            return f"group timeout after {budget_s:g}s"
        return None

    def checkpoint_interrupt() -> None:
        reason = interrupt()
        if reason:
            raise SolverTimeout(reason)

    session: Optional[DeadlockQuerySession] = None
    resolved: List[Tuple[int, Scenario, NoCInstance]] = []
    instances: Dict[int, NoCInstance] = {}
    cache_deltas: Dict[int, Dict[str, int]] = {}
    results: List[Tuple[int, ScenarioVerdict]] = []
    #: The scenario whose span is open when a failure strikes:
    #: ``(index, scenario, instance, solver_before, started)``.
    current: Optional[Tuple] = None
    failure: Optional[Tuple[str, str]] = None

    try:
        execute_directive(directive, in_worker)
        for index, scenario in indexed_scenarios:
            checkpoint_interrupt()
            hits_before, misses_before = cache.hits, cache.misses
            instance = scenario.resolve()
            cache_deltas[index] = {"hits": cache.hits - hits_before,
                                   "misses": cache.misses - misses_before}
            resolved.append((index, scenario, instance))
            instances[index] = instance
        vertices: Dict[Port, None] = {}
        for _, _, instance in resolved:
            for port in instance.topology.ports:
                vertices.setdefault(port)

        base: DirectedGraph[Port] = DirectedGraph()
        for port in vertices:
            base.add_vertex(port)
        session = DeadlockQuerySession(base, name=group_key, seed=seed,
                                       trace=trace)
        if budget_s is not None:
            session.set_interrupt(interrupt)
        known_edges: set = set()

        for index, scenario, instance in resolved:
            checkpoint_interrupt()
            if trace is not None:
                trace.emit("scenario_begin", scenario=scenario.name,
                           group=group_key, index=index,
                           shard=list(shard) if shard is not None else None)
            scenario_start = time.perf_counter()
            solver_before = session.solver_stats
            current = (index, scenario, instance, solver_before,
                       scenario_start)
            graph = routing_dependency_graph(instance.routing)
            edges = graph.edges()
            new_edges = 0
            for source, target in edges:
                if (source, target) not in known_edges:
                    session.add_edge(source, target)
                    known_edges.add((source, target))
                    new_edges += 1

            relation = (instance.routing
                        if isinstance(instance.routing, EscapeChannelRouting)
                        else None)
            coverage = None
            if relation is None:
                condition = "theorem1"
                num_vcs = 1
                query_edges = edges
                deadlock_free = session.is_deadlock_free_edges(edges)
            else:
                # The VC-granular Duato condition: explicit (V-1) coverage
                # plus the escape-class restriction of (V-2) on the shared
                # session.
                from repro.core.dependency import class_edges
                from repro.core.obligations import check_v1_escape_coverage

                condition = "vc-escape"
                num_vcs = relation.num_vcs
                query_edges = class_edges(graph, relation.escape_vcs)
                coverage = check_v1_escape_coverage(relation)
                deadlock_free = (coverage.holds
                                 and session.is_deadlock_free_edges(
                                     query_edges))

            cycle_core: List[Tuple[Port, Port]] = []
            escape: List[Tuple[Port, Port]] = []
            if not deadlock_free and analyse_failures:
                cycle_core = session.cycle_core_for(query_edges) or []
                escape = [edge for edge in cycle_core
                          if session.is_deadlock_free_edges(
                              e for e in query_edges if e != edge)]

            if cross_check:
                if relation is None:
                    from repro.checking.graphs import find_cycle_dfs

                    reference = find_cycle_dfs(graph).acyclic
                else:
                    from repro.core.theorems import check_deadlock_freedom_vc

                    reference = check_deadlock_freedom_vc(
                        relation, graph=graph, coverage=coverage).holds
                if reference != deadlock_free:
                    raise AssertionError(
                        f"portfolio verdict disagrees with the explicit "
                        f"check for {scenario.name}: sat={deadlock_free} "
                        f"explicit={reference}")

            solver_after = session.solver_stats
            solver_delta = {key: solver_after[key] - solver_before.get(key, 0)
                            for key in solver_after}
            elapsed = time.perf_counter() - scenario_start
            if trace is not None:
                trace.emit("scenario_end", scenario=scenario.name,
                           group=group_key, deadlock_free=deadlock_free,
                           condition=condition, edges=len(edges),
                           new_edges=new_edges, solver=solver_delta,
                           cache=cache_deltas[index],
                           wall_time_s=round(elapsed, 6), status="ok")
            results.append((index, ScenarioVerdict(
                scenario=scenario.name,
                topology=str(instance.topology),
                routing=instance.routing.name(),
                switching=instance.switching.name(),
                deadlock_free=deadlock_free,
                edges=len(edges),
                new_edges=new_edges,
                elapsed_seconds=elapsed,
                cycle_core=cycle_core,
                escape_edges=escape,
                condition=condition,
                num_vcs=num_vcs,
                solver=solver_delta,
                spec=(scenario.spec.to_dict()
                      if scenario.spec is not None else None),
                shard=shard,
                index=index,
            )))
            current = None
    except SolverTimeout as exc:
        failure = ("timeout", getattr(exc, "reason", None) or str(exc))
    except Exception as exc:  # KeyboardInterrupt deliberately excluded
        failure = ("error", f"{type(exc).__name__}: {exc}")

    if session is not None:
        # The interrupt callback must not outlive this group: the session
        # is per-group, but being explicit keeps the contract obvious.
        session.set_interrupt(None)

    if failure is not None:
        status, reason = failure
        if current is not None:
            # Close the in-flight scenario's span, attributing the solver
            # work it burned before the cut-off -- the per-group
            # reconciliation (scenario deltas sum to session aggregates)
            # must keep holding on truncated traces.
            index, scenario, instance, solver_before, started = current
            partial: Dict[str, int] = {}
            if session is not None:
                solver_after = session.solver_stats
                partial = {key: solver_after[key] - solver_before.get(key, 0)
                           for key in solver_after}
            elapsed = time.perf_counter() - started
            if trace is not None:
                trace.emit("scenario_end", scenario=scenario.name,
                           group=group_key, deadlock_free=None,
                           condition="none", edges=0, new_edges=0,
                           solver=partial, cache=cache_deltas.get(index, {}),
                           wall_time_s=round(elapsed, 6), status=status)
            results.append((index, _failure_verdict(
                index, scenario, group_key, shard, status, reason,
                instance=instance, solver=partial, elapsed=elapsed)))
        done = {index for index, _ in results}
        for index, scenario in indexed_scenarios:
            if index not in done:
                results.append((index, _failure_verdict(
                    index, scenario, group_key, shard, status, reason,
                    instance=instances.get(index))))
        results.sort(key=lambda pair: pair[0])
        if trace is not None:
            trace.emit("group_timeout" if status == "timeout"
                       else "group_error", group=group_key, reason=reason)

    session_stats = session.solver_stats if session is not None else {}
    if trace is not None and session is not None:
        trace.emit("session_summary", group=group_key, stats=session_stats)
    cache_delta = {"hits": cache.hits - cache_hits_before,
                   "misses": cache.misses - cache_misses_before}
    return group_key, results, session_stats, cache_delta


def _emit_replayed_group(trace, result: Tuple,
                         shard: Optional[Tuple[int, int]]) -> None:
    """Trace spans for a group replayed from the verdict store.

    A warm-cache run does no solver work, but its trace must still
    satisfy the reconciliation contract (per-scenario ``scenario_end``
    solver deltas sum to the group's ``session_summary`` stats), so the
    spans are re-emitted from the stored record with ``cached: true``.
    The per-scenario ``cache`` deltas are process history, not workload
    content (scrubbed by analysis anyway), and are empty on replay.
    """
    key, pairs, stats, _cache_delta = result
    for index, verdict in pairs:
        trace.emit("scenario_begin", scenario=verdict.scenario,
                   group=key, index=index,
                   shard=list(shard) if shard is not None else None,
                   cached=True)
        trace.emit("scenario_end", scenario=verdict.scenario,
                   group=key, deadlock_free=verdict.deadlock_free,
                   condition=verdict.condition, edges=verdict.edges,
                   new_edges=verdict.new_edges,
                   solver=dict(verdict.solver), cache={},
                   wall_time_s=round(verdict.elapsed_seconds, 6),
                   status=verdict.status, cached=True)
    trace.emit("session_summary", group=key, stats=dict(stats),
               cached=True)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` mean "all cores"."""
    if jobs is None or jobs < 1:
        return os.cpu_count() or 1
    return jobs


def _terminate_pool(pool) -> None:
    """Hard-stop a pool whose workers may be wedged or dead.

    ``shutdown()`` alone would join a hung worker forever (and so would
    the interpreter's atexit handler); terminating the worker processes
    first guarantees the join returns.  Everything is guarded: the worst
    case of a CPython that renamed the private process table is a leaked
    worker, not a crashed run.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=True, cancel_futures=True)
    except Exception:
        try:
            pool.shutdown(wait=False)
        except Exception:
            pass


def run_portfolio(scenarios: Sequence[Scenario],
                  seed: int = 2010,
                  analyse_failures: bool = True,
                  cross_check: bool = False,
                  jobs: int = 1,
                  shard: Optional[Tuple[int, int]] = None,
                  shard_balance: str = "hash",
                  trace=None,
                  group_timeout: Optional[float] = None,
                  run_deadline: Optional[float] = None,
                  max_retries: int = DEFAULT_MAX_RETRIES,
                  retry_backoff: float = DEFAULT_RETRY_BACKOFF,
                  checkpoint: Optional[str] = None,
                  resume: bool = False,
                  store=None,
                  store_readonly: bool = False,
                  _fault_plan=None) -> PortfolioReport:
    """Run every scenario through shared incremental deadlock sessions.

    ``analyse_failures`` additionally extracts the cycle core and the
    escape-edge suggestions for deadlock-prone scenarios (a handful of
    extra incremental solves each).  ``cross_check`` re-derives every
    verdict with the linear-time explicit check (DFS cycle search, or the
    explicit (V-1)/(V-2) checker for VC scenarios) and asserts agreement --
    the belt-and-braces mode used by the tests.

    ``jobs`` schedules the scenario *groups* across that many worker
    processes (``0``/``None``: one per core).  Scheduling is group-affine:
    scenarios sharing a ``group_key`` stay on one worker, in submission
    order, so the group-union session seeding and the per-process
    construction caches keep paying off exactly as in a serial run.  The
    verdicts -- ordering, verdict bits, cores, solver statistics -- are
    identical to ``jobs=1``; only wall times and cache counters differ
    (assert with :meth:`PortfolioReport.comparable_dict`).

    ``shard=(i, n)`` restricts the run to the ``i``-th of ``n`` partitions
    of the scenario *groups* (assignment by :func:`shard_index_of`, stable
    across processes and machines).  Pass the **full** scenario list to
    every shard: each shard selects its own groups, keeps the original
    submission indices on its verdicts, and never splits a group -- so
    incremental sessions stay whole and
    :func:`merge_shard_reports` reassembles the exact unsharded report.

    ``shard_balance`` chooses the group-to-shard assignment: ``"hash"``
    (CRC-32, cost-oblivious) or ``"weighted"`` (LPT over the
    :func:`scenario_cost` model, evening out shard wall times on skewed
    grids).  Both are deterministic functions of the full scenario list,
    so every shard of one run agrees on the partition; the merged report
    is identical either way, only the work split differs.

    Scenarios whose routing is a
    :class:`~repro.routing.escape.EscapeChannelRouting` are decided by the
    VC-granular escape condition: (V-1) by explicit enumeration, (V-2) as
    an incremental solve restricted to the escape-class edges of the shared
    universe.  Their group sessions therefore host *channel* vertices; mix
    VC and single-VC scenarios in one group only if their vertex universes
    agree.

    ``trace`` (a :class:`~repro.core.trace.TraceWriter`) records the run as
    a structured event stream -- portfolio/scenario spans wrapping the
    oracle and solver events.  Tracing is **serial only**: a writer cannot
    cross the process-pool boundary, so ``trace`` with ``jobs != 1`` is an
    error rather than a silently partial stream.

    **Fault tolerance.**  ``group_timeout`` bounds every scenario group's
    wall time (seconds): the group's session cooperatively aborts its
    running solve (:class:`~repro.checking.sat.SolverTimeout`) and the
    group's unfinished scenarios become ``status="timeout"`` verdicts; a
    truly wedged worker is additionally reaped by the parent's watch
    loop.  ``run_deadline`` bounds the whole run the same way.  A crashed
    worker (:class:`~concurrent.futures.process.BrokenProcessPool`) is
    survived by rebuilding the pool and retrying only the unfinished
    groups, with deterministic exponential backoff (``retry_backoff *
    2**(n-1)``, capped); after ``max_retries`` rebuilds the run degrades
    to in-process serial execution.  No failure aborts the run: every
    scenario always gets a verdict, and ``report.recovery`` records what
    it took.

    **Checkpoint/resume.**  ``checkpoint`` journals every fully-decided
    group (verdicts + session stats) to an append-only, fsynced JSONL
    file as soon as it completes; ``resume=True`` replays the journal's
    valid records -- matching engine fingerprint, run parameters and
    scenario spec hashes -- instead of re-solving them, so a killed sweep
    continues where it crashed and merges to the byte-identical report
    (:meth:`PortfolioReport.comparable_dict`).  Stale records (edited
    engine or scenarios) are recomputed, never trusted.

    **Verdict store.**  ``store`` (a directory path or an opened
    :class:`~repro.core.store.VerdictStore`) consults a *persistent,
    cross-run* content-addressed cache before solving: a group whose
    record matches the engine fingerprint, run key and spec hashes is
    replayed from disk (zero solver work) and still yields a
    :meth:`~PortfolioReport.comparable_dict`-identical report; every
    freshly solved all-``ok`` group is durably recorded for the next run.
    The store degrades rather than fails -- corrupt records are
    quarantined and recomputed, an unwritable directory serves lookups
    only (or pass ``store_readonly=True`` to demand that), an unusable
    one turns the run cache-less -- and its session counters land in
    ``report.store_stats``.  Composes with ``checkpoint``/``resume``
    (journal replay wins, then the store fills in) and with ``jobs``
    (lookups and records happen in the orchestrator, not the workers).

    ``_fault_plan`` (tests/CI only; also settable via the
    ``REPRO_FAULT_PLAN`` environment variable) deterministically injects
    worker kills, hangs, errors or timeouts per group -- see
    :mod:`repro.core.faultplan`.
    """
    start = time.perf_counter()
    ordered = list(scenarios)
    jobs = resolve_jobs(jobs)
    if trace is not None and jobs > 1:
        raise ValueError(
            "tracing requires a serial run: pass jobs=1 with trace=")
    if resume and checkpoint is None:
        raise ValueError("resume=True requires checkpoint=PATH")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    fault_plan = resolve_fault_plan(_fault_plan)
    if shard_balance not in SHARD_BALANCE_POLICIES:
        raise ValueError(f"shard_balance must be one of "
                         f"{SHARD_BALANCE_POLICIES}, got {shard_balance!r}")
    if shard is not None:
        shard_index, shard_count = int(shard[0]), int(shard[1])
        if shard_count < 1 or not 0 <= shard_index < shard_count:
            raise ValueError(f"shard must be (i, n) with 0 <= i < n, "
                             f"got {shard!r}")
        shard = (shard_index, shard_count)

    # Group scenarios by key, preserving submission order.  Each group's
    # worker seeds its session with the union of the group's vertex
    # universes, so scenarios over growing channel sets (1, 2, 4 VCs of
    # one topology) can share one encoding.
    groups: Dict[str, List[Tuple[int, Scenario]]] = {}
    for index, scenario in enumerate(ordered):
        groups.setdefault(scenario.group_key(), []).append((index, scenario))

    if shard is not None:
        if shard_balance == "weighted":
            # Costs are derived from the FULL group set (every shard sees
            # the whole scenario list), so all shards compute the same
            # LPT assignment independently.
            costs = {key: sum(scenario_cost(scenario)
                              for _, scenario in indexed)
                     for key, indexed in groups.items()}
            assignment = weighted_shard_assignment(costs, shard[1])
            groups = {key: indexed for key, indexed in groups.items()
                      if assignment[key] == shard[0]}
        else:
            groups = {key: indexed for key, indexed in groups.items()
                      if shard_index_of(key, shard[1]) == shard[0]}

    # In a sharded run the verdict list covers only this shard's scenarios;
    # verdicts keep their original submission index, the report orders them
    # by it.
    kept_indices = sorted(index for indexed in groups.values()
                          for index, _ in indexed)
    positions = {index: position
                 for position, index in enumerate(kept_indices)}

    order = list(groups.keys())
    base_payloads = {key: (key, groups[key], seed, analyse_failures,
                           cross_check, shard) for key in order}

    if trace is not None:
        trace.emit("portfolio_begin", scenarios=len(kept_indices),
                   shard=list(shard) if shard is not None else None)

    # -- durable layers: checkpoint journal + verdict store ------------------
    journal: Optional[CheckpointJournal] = None
    verdict_store: Optional[VerdictStore] = None
    fingerprint = run_key = group_specs = None
    replayed_groups: List[str] = []
    store_replayed: List[str] = []
    completed: Dict[str, Tuple] = {}
    if isinstance(store, VerdictStore):
        verdict_store = store
        if verdict_store.mode == "off" and \
                verdict_store.degraded_reason is None:
            verdict_store.open()
    elif store is not None:
        verdict_store = VerdictStore(os.fspath(store),
                                     readonly=store_readonly).open()
    if verdict_store is not None and trace is not None:
        verdict_store.attach_trace(trace)
    if checkpoint is not None or verdict_store is not None:
        fingerprint = engine_fingerprint()
        run_key = make_run_key(seed, analyse_failures, cross_check, shard)
        group_specs = {
            key: [(index, scenario_fingerprint(scenario.spec
                                               if scenario.spec is not None
                                               else scenario))
                  for index, scenario in groups[key]]
            for key in order}

    def replay_pairs(record: Dict) -> List[Tuple[int, ScenarioVerdict]]:
        return [(int(entry["index"]),
                 ScenarioVerdict.from_json_dict(
                     entry, index=int(entry["index"])))
                for entry in record["verdicts"]]

    if checkpoint is not None:
        journal = CheckpointJournal(checkpoint)
        if resume:
            replayable = journal.replayable_groups(
                fingerprint, "repro-portfolio-report", run_key, group_specs)
            for key in order:
                record = replayable.get(key)
                if record is None:
                    continue
                completed[key] = (key, replay_pairs(record),
                                  dict(record["session_stats"]),
                                  dict(record["cache"]))
                replayed_groups.append(key)
                if trace is not None:
                    trace.emit("checkpoint", action="replay", group=key)

    def store_group(result: Tuple) -> None:
        """Persist an all-``ok`` group into the cross-run verdict store."""
        key, pairs, stats, cache_delta = result
        if verdict_store is None:
            return
        if any(verdict.status != "ok" for _, verdict in pairs):
            return
        verdict_store.record(
            fingerprint, "repro-portfolio-report", run_key, key,
            group_specs[key],
            [(index, verdict.to_json_dict()) for index, verdict in pairs],
            stats, cache_delta)

    if verdict_store is not None:
        # The journal (this exact run's own history) wins; the store fills
        # in everything other runs already proved.  A journal-replayed
        # group is pushed forward into the store so an interrupted cold
        # sweep still warms the cache it was asked to populate.
        for key in order:
            if key in completed:
                store_group(completed[key])
                continue
            record = verdict_store.lookup(
                fingerprint, "repro-portfolio-report", run_key, key,
                group_specs[key])
            if record is None:
                continue
            result = (key, replay_pairs(record),
                      dict(record["session_stats"]),
                      dict(record["cache"]))
            completed[key] = result
            store_replayed.append(key)
            if trace is not None:
                _emit_replayed_group(trace, result, shard)

    def journal_only(result: Tuple) -> None:
        key, pairs, stats, cache_delta = result
        if journal is not None and \
                all(verdict.status == "ok" for _, verdict in pairs):
            journal.record_group(
                fingerprint, "repro-portfolio-report", run_key, key,
                group_specs[key],
                [(index, verdict.to_json_dict())
                 for index, verdict in pairs],
                stats, cache_delta)
            if trace is not None:
                trace.emit("checkpoint", action="record", group=key)

    def journal_group(result: Tuple) -> None:
        """Durably record a freshly solved group in both layers (iff every
        verdict is a real decision -- failures describe a run, not the
        scenarios)."""
        journal_only(result)
        store_group(result)

    if journal is not None:
        # Store-replayed groups enter the journal too, so a later resume
        # of this run replays them without consulting the store again.
        for key in store_replayed:
            journal_only(completed[key])

    # -- execution with deadlines, crash recovery, degradation ---------------
    deadline = (time.monotonic() + run_deadline
                if run_deadline is not None else None)
    attempts: Dict[str, int] = {}
    crash_retries = 0
    degraded = False
    parent_pid = os.getpid()
    pending: "Dict[str, None]" = {key: None for key in order
                                  if key not in completed}

    def group_budget() -> Optional[float]:
        budget = group_timeout
        if deadline is not None:
            remaining = max(0.0, deadline - time.monotonic())
            budget = remaining if budget is None else min(budget, remaining)
        return budget

    def fault_directive(key: str) -> Optional[Tuple[str, float]]:
        if not fault_plan:
            return None
        directive = fault_plan.directive_for(key, attempts[key])
        if directive is None:
            return None
        return (directive.action, directive.param)

    def parent_failure(key: str, status: str, reason: str) -> Tuple:
        """A whole-group failure decided by the orchestrator (no worker
        result to harvest: the worker hung, or never started)."""
        pairs = [(index, _failure_verdict(index, scenario, key, shard,
                                          status, reason))
                 for index, scenario in groups[key]]
        if trace is not None:
            trace.emit("group_timeout" if status == "timeout"
                       else "group_error", group=key, reason=reason)
        return (key, pairs, {}, {"hits": 0, "misses": 0})

    def run_in_process(keys: List[str]) -> None:
        for key in keys:
            if deadline is not None and time.monotonic() >= deadline:
                completed[key] = parent_failure(key, "timeout",
                                                "run deadline exceeded")
                pending.pop(key, None)
                continue
            attempts[key] = attempts.get(key, 0) + 1
            payload = base_payloads[key] + (group_budget(),
                                            fault_directive(key), parent_pid)
            result = _run_group(payload, trace=trace)
            completed[key] = result
            journal_group(result)
            pending.pop(key, None)

    use_pool = jobs > 1 and len(pending) > 1
    report_jobs = min(jobs, len(pending)) if use_pool else 1

    try:
        if not use_pool:
            run_in_process(list(pending))
        else:
            from concurrent.futures import (
                FIRST_COMPLETED,
                ProcessPoolExecutor,
                wait as futures_wait,
            )
            from concurrent.futures.process import BrokenProcessPool

            # The parent-side watch loop reaps workers the cooperative
            # in-worker deadline cannot reach (truly wedged processes),
            # with a grace margin so a worker about to return its own
            # richer timeout verdict usually wins the race.
            external_timeout = (group_timeout * 1.25 + 0.2
                                if group_timeout is not None else None)
            while pending:
                if deadline is not None and time.monotonic() >= deadline:
                    for key in list(pending):
                        completed[key] = parent_failure(
                            key, "timeout", "run deadline exceeded")
                    pending.clear()
                    break
                if degraded:
                    run_in_process(list(pending))
                    break
                workers = min(jobs, len(pending))
                pool = ProcessPoolExecutor(max_workers=workers)
                pool_broken = False
                kill_pool = False
                try:
                    queue = list(pending)
                    active: Dict[object, Tuple[str, float]] = {}

                    def submit_ready() -> None:
                        # At most ``workers`` groups in flight: a group's
                        # timeout clock must not start ticking while it
                        # sits in an executor queue behind other groups.
                        while queue and len(active) < workers:
                            key = queue.pop(0)
                            attempts[key] = attempts.get(key, 0) + 1
                            payload = base_payloads[key] + (
                                group_budget(), fault_directive(key),
                                parent_pid)
                            future = pool.submit(_run_group, payload)
                            active[future] = (key, time.monotonic())

                    submit_ready()
                    while active:
                        tick = (0.05 if (external_timeout is not None
                                         or deadline is not None) else None)
                        done, _ = futures_wait(set(active), timeout=tick,
                                               return_when=FIRST_COMPLETED)
                        for future in done:
                            key, _started = active.pop(future)
                            try:
                                result = future.result()
                            except BrokenProcessPool:
                                pool_broken = True
                                continue
                            except Exception as exc:
                                completed[key] = parent_failure(
                                    key, "error",
                                    f"{type(exc).__name__}: {exc}")
                                pending.pop(key, None)
                                continue
                            completed[key] = result
                            journal_group(result)
                            pending.pop(key, None)
                        if pool_broken:
                            kill_pool = True
                            break
                        now = time.monotonic()
                        if deadline is not None and now >= deadline:
                            kill_pool = True
                            break
                        if external_timeout is not None:
                            expired = [
                                (future, key)
                                for future, (key, started) in active.items()
                                if now - started >= external_timeout]
                            if expired:
                                for future, key in expired:
                                    active.pop(future)
                                    completed[key] = parent_failure(
                                        key, "timeout",
                                        f"group timeout after "
                                        f"{group_timeout:g}s")
                                    pending.pop(key, None)
                                # A wedged worker cannot be cancelled --
                                # the pool dies with it; innocent active
                                # groups stay pending and are resubmitted
                                # (progress is guaranteed: ``pending``
                                # shrank by the expired groups).
                                kill_pool = True
                                break
                        submit_ready()
                except BrokenProcessPool:
                    # submit() on an already-broken pool raises too; the
                    # group stays pending and the rebuild path retries it.
                    pool_broken = True
                    kill_pool = True
                except KeyboardInterrupt:
                    # Ctrl-C must not join a possibly-hung worker: kill the
                    # pool and let the interrupt propagate (the outer
                    # ``finally`` flushes the checkpoint journal).
                    kill_pool = True
                    raise
                finally:
                    if kill_pool or pool_broken:
                        _terminate_pool(pool)
                    else:
                        pool.shutdown(wait=True)
                if pool_broken:
                    crash_retries += 1
                    if crash_retries > max_retries:
                        degraded = True
                    elif retry_backoff > 0:
                        # Deterministic exponential backoff -- no jitter,
                        # so retried runs stay reproducible.
                        time.sleep(min(
                            retry_backoff * 2 ** (crash_retries - 1),
                            RETRY_BACKOFF_CAP))
    finally:
        if journal is not None:
            journal.close()

    group_results = [completed[key] for key in order]

    verdicts: List[Optional[ScenarioVerdict]] = [None] * len(kept_indices)
    session_stats: Dict[str, Dict[str, int]] = {}
    cache_stats = {"hits": 0, "misses": 0}
    for group_key, indexed_verdicts, stats, cache_delta in group_results:
        if stats:
            session_stats[group_key] = stats
        cache_stats["hits"] += cache_delta.get("hits", 0)
        cache_stats["misses"] += cache_delta.get("misses", 0)
        for index, verdict in indexed_verdicts:
            verdicts[positions[index]] = verdict

    assert all(verdict is not None for verdict in verdicts)
    if trace is not None:
        free = sum(1 for verdict in verdicts
                   if verdict is not None and verdict.status == "ok"
                   and verdict.deadlock_free)
        trace.emit("portfolio_end", scenarios=len(verdicts),
                   deadlock_free=free,
                   deadlock_prone=len(verdicts) - free)
        trace.flush()
    store_stats: Dict[str, object] = {}
    if verdict_store is not None:
        store_stats = verdict_store.stats()
        store_stats["replayed_groups"] = sorted(store_replayed)
    return PortfolioReport(
        verdicts=verdicts,  # type: ignore[arg-type]
        elapsed_seconds=time.perf_counter() - start,
        session_stats=session_stats,
        jobs=report_jobs,
        cache_stats=cache_stats,
        shard=shard,
        recovery={
            "crash_retries": crash_retries,
            "degraded_serial": degraded,
            "group_attempts": {key: attempts[key] for key in order
                               if key in attempts},
            "replayed_groups": sorted(replayed_groups),
        },
        store_stats=store_stats)


def standard_matrix(mesh_sizes: Iterable[int] = (3, 4),
                    ring_sizes: Iterable[int] = (4,),
                    buffer_capacity: int = 2) -> List[str]:
    """The standard sweep as matrix terms (see :func:`standard_portfolio`).

    One wormhole term plus the paper's virtual-cut-through pair per mesh
    size, then the deadlock-free and deadlock-prone rings -- the exact
    scenario order of the historical hand-built list, now declaratively.
    The mesh term sweeps *every* routing token the ``mesh`` kind
    registers, so a newly registered routing automatically joins the
    standard portfolio.
    """
    from repro.core.spec import spec_registry

    routing_list = ",".join(spec_registry().entry("mesh").routings)
    terms: List[str] = []
    for size in mesh_sizes:
        terms.append(f"mesh:{size}x{size}, routing=[{routing_list}], "
                     f"switching=wormhole, buffers={buffer_capacity}")
        terms.append(f"mesh:{size}x{size}, routing=xy, switching=vct, "
                     f"buffers={buffer_capacity}")
    for size in ring_sizes:
        terms.append(f"ring:{size}, routing=chain, "
                     f"buffers={buffer_capacity}")
        # The clockwise counterexample keeps its historical single-buffer
        # instantiation (the deadlock verdict is capacity-independent).
        terms.append(f"ring:{size}, routing=clockwise, buffers=1")
    return terms


def standard_portfolio(mesh_sizes: Iterable[int] = (3, 4),
                       ring_sizes: Iterable[int] = (4,),
                       buffer_capacity: int = 2) -> List[Scenario]:
    """The library's standard sweep: every routing function on square
    meshes (wormhole and virtual cut-through for the paper's pair), plus
    the deadlock-free and deadlock-prone ring instantiations.

    Built by expanding :func:`standard_matrix` through the declarative
    spec layer -- the same construction path as ``repro batch --matrix``.
    """
    return scenarios_from_specs(expand_matrix(standard_matrix(
        mesh_sizes=mesh_sizes, ring_sizes=ring_sizes,
        buffer_capacity=buffer_capacity)))


def vc_escape_matrix(mesh_sizes: Iterable[int] = (3,),
                     torus_sizes: Iterable[int] = (4,),
                     vc_counts: Sequence[int] = (1, 2, 4),
                     buffer_capacity: int = 2) -> List[str]:
    """The VC escape sweep as matrix terms (see :func:`vc_escape_portfolio`)."""
    vcs = ",".join(str(count) for count in vc_counts)
    terms: List[str] = []
    for size in mesh_sizes:
        terms.append(f"vc-mesh:{size}x{size}, vcs=[{vcs}], "
                     f"buffers={buffer_capacity}")
    for size in torus_sizes:
        terms.append(f"vc-torus:{size}x{size}, vcs=[{vcs}], "
                     f"buffers={buffer_capacity}")
    return terms


def vc_escape_portfolio(mesh_sizes: Iterable[int] = (3,),
                        torus_sizes: Iterable[int] = (4,),
                        vc_counts: Sequence[int] = (1, 2, 4),
                        buffer_capacity: int = 2) -> List[Scenario]:
    """The virtual-channel escape sweep: one shared session per topology.

    For every mesh size, fully-adaptive minimal routing with an XY escape
    VC at each VC count; for every torus size, dimension-order routing with
    a dateline escape pair (plus an adaptive class from 3 VCs up).  All VC
    counts of one topology share a group (their channel universes nest), so
    the sweep exercises the incremental encoding across growing VC counts:
    the 1-VC verdict is deadlock-prone, the multi-VC verdicts are proved
    free by the escape condition on the same solver.
    """
    return scenarios_from_specs(expand_matrix(vc_escape_matrix(
        mesh_sizes=mesh_sizes, torus_sizes=torus_sizes,
        vc_counts=vc_counts, buffer_capacity=buffer_capacity)))


def extended_matrix(mesh_sizes: Iterable[int] = (8, 16),
                    ring_sizes: Iterable[int] = (8,),
                    vc_mesh_sizes: Iterable[int] = (8,),
                    vc_counts: Sequence[int] = (1, 2, 4),
                    buffer_capacity: int = 2) -> List[str]:
    """The bench sweep as matrix terms (see :func:`extended_portfolio`)."""
    return (standard_matrix(mesh_sizes=mesh_sizes, ring_sizes=ring_sizes,
                            buffer_capacity=buffer_capacity)
            + vc_escape_matrix(mesh_sizes=vc_mesh_sizes, torus_sizes=(),
                               vc_counts=vc_counts,
                               buffer_capacity=buffer_capacity))


def extended_portfolio(mesh_sizes: Iterable[int] = (8, 16),
                       ring_sizes: Iterable[int] = (8,),
                       vc_mesh_sizes: Iterable[int] = (8,),
                       vc_counts: Sequence[int] = (1, 2, 4),
                       buffer_capacity: int = 2) -> List[Scenario]:
    """The bench sweep: the standard portfolio scaled up to large meshes.

    Every routing function of the standard portfolio on 8x8 and 16x16
    meshes plus the VC escape scenarios (1/2/4 VCs) on an 8x8 mesh -- large
    enough dependency universes (thousands of ports/channels) that the
    parallel scheduling and the construction caches have headroom to show
    themselves, yet each group still finishes in seconds.  This is the
    portfolio the ``repro bench`` trajectory runs serial vs. parallel.
    """
    return scenarios_from_specs(expand_matrix(extended_matrix(
        mesh_sizes=mesh_sizes, ring_sizes=ring_sizes,
        vc_mesh_sizes=vc_mesh_sizes, vc_counts=vc_counts,
        buffer_capacity=buffer_capacity)))
