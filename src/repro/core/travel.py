"""Travels: the unit of communication of GeNoC.

The paper (Section III-B) defines a travel as a triple ``<id, c, d>`` where
``id`` is a unique identifier, ``c`` the current location and ``d`` the
destination port.  For the HERMES instantiation travels are extended with a
pre-computed route ``t.r`` (Section V.5) and, because HERMES uses wormhole
switching, with a flit count.

:class:`Travel` stores the static description of a message; the dynamic
progress of its flits through the network lives in
:class:`repro.core.state.NetworkState` and in the per-travel
:class:`TravelProgress` records of a configuration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.network.flit import Flit, make_flits
from repro.network.port import Port

_id_counter = itertools.count()


def fresh_travel_id() -> int:
    """Return a process-unique travel identifier."""
    return next(_id_counter)


@dataclass(frozen=True)
class Travel:
    """A message to be sent across the network.

    Attributes
    ----------
    travel_id:
        Unique identifier (the ``id`` of the paper's triple).
    source:
        The port at which the message is injected -- for HERMES the local
        in-port of the originating node.
    destination:
        The port at which the message leaves the network -- for HERMES the
        local out-port of the destination node (the ``d`` of the triple).
    num_flits:
        Number of flits of the message (>= 1).  Header + body flits; the
        paper leaves the message size uninterpreted, so it is a parameter.
    route:
        The pre-computed route ``t.r`` (a sequence of ports from ``source``
        to ``destination``), or ``None`` before the routing function has been
        applied.
    """

    travel_id: int
    source: Port
    destination: Port
    num_flits: int = 1
    route: Optional[Tuple[Port, ...]] = None

    def __post_init__(self) -> None:
        if self.num_flits < 1:
            raise ValueError("a travel carries at least one flit")

    # -- route handling -------------------------------------------------------
    @property
    def has_route(self) -> bool:
        return self.route is not None

    def with_route(self, route: Sequence[Port]) -> "Travel":
        """Return a copy of the travel carrying the given route."""
        route_tuple = tuple(route)
        if not route_tuple:
            raise ValueError("a route has at least one port")
        if route_tuple[0] != self.source:
            raise ValueError(
                f"route starts at {route_tuple[0]}, expected source {self.source}"
            )
        if route_tuple[-1] != self.destination:
            raise ValueError(
                f"route ends at {route_tuple[-1]}, "
                f"expected destination {self.destination}"
            )
        return replace(self, route=route_tuple)

    @property
    def route_length(self) -> int:
        """Number of hops of the route (``|t.r|`` of the paper)."""
        if self.route is None:
            raise ValueError(f"travel {self.travel_id} has no route yet")
        return len(self.route)

    # -- flits ------------------------------------------------------------------
    def flits(self) -> List[Flit]:
        """The flit sequence of this message (header first)."""
        return make_flits(self.travel_id, self.num_flits)

    def __str__(self) -> str:
        route = "?" if self.route is None else f"{len(self.route)} hops"
        return (f"Travel#{self.travel_id} {self.source} -> {self.destination} "
                f"({self.num_flits} flits, route: {route})")


def make_travel(source: Port, destination: Port, num_flits: int = 1,
                travel_id: Optional[int] = None) -> Travel:
    """Convenience constructor allocating a fresh identifier if needed."""
    if travel_id is None:
        travel_id = fresh_travel_id()
    return Travel(travel_id=travel_id, source=source, destination=destination,
                  num_flits=num_flits)


def check_unique_ids(travels: Sequence[Travel]) -> None:
    """Raise if two travels share an identifier.

    GeNoC requires travel identifiers to be unique (they key the arrived
    list and the per-travel progress records).
    """
    seen = set()
    for travel in travels:
        if travel.travel_id in seen:
            raise ValueError(f"duplicate travel id {travel.travel_id}")
        seen.add(travel.travel_id)
