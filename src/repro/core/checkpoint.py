"""Crash-safe checkpoint journal for portfolio batch runs.

A long sweep that dies at 90% (power loss, OOM, a SIGKILLed CI runner)
should not re-solve the 90% that already finished.  The journal is an
append-only JSONL file: every *fully solved* scenario group is written as
one self-contained record -- its verdicts, the group's session solver
stats, and its cache counters -- then flushed and ``fsync``\\ ed before the
engine moves on.  A crash can at worst lose the group in flight; every
record already on disk is complete and replayable.

Records are keyed on three things that must all match before a replay is
trusted:

* the **engine fingerprint** (``repro.__engine_fingerprint__`` -- a hash
  over the package sources), so verdicts computed by an older engine are
  recomputed instead of replayed;
* the **run key** (seed, analyse_failures, cross_check, shard), so a
  journal from a differently parameterised sweep is never mixed in;
* the **scenario fingerprints** of the group (canonical spec hashes with
  their submission indices), so edits to the scenario matrix invalidate
  exactly the groups they touch.

Loading is tolerant of a torn tail: a crash mid-``write`` leaves a
truncated final line, which is skipped rather than poisoning the journal.
Only all-``ok`` groups are journaled -- timeout/error verdicts describe a
*run*, not the scenarios, and must be recomputed on resume.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Tuple

# The identity helpers are shared with the verdict store
# (repro.core.store): both layers must agree on what "same engine" and
# "same scenario" mean, so a fingerprint bump invalidates both at once.
# Re-exported here for callers that grew up against this module.
from repro.core.fingerprint import (  # noqa: F401
    engine_fingerprint,
    make_run_key,
    scenario_fingerprint,
)

#: Journal record schema version.
CHECKPOINT_SCHEMA = 1


class CheckpointJournal:
    """Append-only JSONL journal of completed scenario groups."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None

    # -- writing ---------------------------------------------------------

    def open_for_append(self) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")

    def record_group(self, fingerprint: str, kind: str,
                     run_key: Dict[str, Any], group: str,
                     specs: List[Tuple[int, str]],
                     verdicts: List[Tuple[int, Dict[str, Any]]],
                     session_stats: Dict[str, int],
                     cache: Dict[str, int]) -> None:
        """Durably append one completed group.

        ``specs`` are ``(index, scenario_fingerprint)`` pairs in
        submission order; ``verdicts`` are ``(index, verdict_json)``
        pairs.  The record is flushed and fsynced before returning, so a
        crash immediately after still finds it on resume.
        """
        self.open_for_append()
        record = {
            "schema": CHECKPOINT_SCHEMA,
            "kind": kind,
            "fingerprint": fingerprint,
            "run_key": run_key,
            "group": group,
            "specs": [[index, spec_hash] for index, spec_hash in specs],
            "verdicts": [dict(verdict, index=index)
                         for index, verdict in verdicts],
            "session_stats": dict(session_stats),
            "cache": dict(cache),
        }
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading ---------------------------------------------------------

    def load_records(self) -> List[Dict[str, Any]]:
        """All well-formed records, skipping a torn trailing line."""
        records: List[Dict[str, Any]] = []
        if not os.path.exists(self.path):
            return records
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    # A crash mid-append leaves at most one torn line;
                    # everything before it is intact.
                    continue
                if isinstance(record, dict) and \
                        record.get("schema") == CHECKPOINT_SCHEMA:
                    records.append(record)
        return records

    def replayable_groups(self, fingerprint: str, kind: str,
                          run_key: Dict[str, Any],
                          group_specs: Dict[str, List[Tuple[int, str]]],
                          ) -> Dict[str, Dict[str, Any]]:
        """Records safe to replay for this exact run.

        ``group_specs`` maps each group key of the *current* run to its
        ``(index, scenario_fingerprint)`` pairs.  A record replays only
        if its fingerprint, run key, and the full spec list of its group
        all match -- otherwise the group is silently recomputed (a stale
        fingerprint is not an error, just no longer trustworthy).  Later
        records win when a group was journaled twice.
        """
        replayable: Dict[str, Dict[str, Any]] = {}
        for record in self.load_records():
            group = record.get("group")
            if record.get("kind") != kind:
                continue
            if record.get("fingerprint") != fingerprint:
                continue
            if record.get("run_key") != run_key:
                continue
            expected = group_specs.get(group)
            if expected is None:
                continue
            if record.get("specs") != [[index, spec_hash]
                                       for index, spec_hash in expected]:
                continue
            replayable[group] = record
        return replayable
