"""The perf trajectory: benchmark runner and schema-versioned reports.

Speedups that are not written down decay into anecdotes.  This module turns
every performance-relevant path of the engine into a reproducible, *schema
versioned* JSON report -- ``BENCH_<date>.json`` -- so that each PR can be
compared against the committed trajectory of its predecessors:

* **solver microbenchmarks** -- fixed, deterministic CDCL workloads (one-
  shot acyclicity, a cyclic oracle query, incremental escape analysis, a
  random-3SAT instance) timed best-of-N on a cold construction cache;
* **portfolio runs** -- the scenario sweep (smoke or extended profile)
  executed at each requested job count through the *same*
  :func:`~repro.core.portfolio.run_portfolio` the CLI uses, recording wall
  time, verdict counts, per-scenario solver deltas and cache counters;
* **reference deltas** -- an optional reference measurement set (e.g. the
  seed engine of the current PR, or the previous ``BENCH_*.json``) against
  which speedups are computed.

Entry points: ``repro bench --json`` (CLI) and ``benchmarks/run_bench.py``
(standalone, writes ``BENCH_<date>.json``).  :func:`validate_bench_report`
is the schema gate the CI ``bench-smoke`` job fails on.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Schema 2 (the flat-array CDCL core): portfolio runs must carry the
#: per-group ``session_stats``, whose solver counters now include the
#: learned-clause LBD histogram (``lbd_<n>``, bucket 10 = ">= 10") and
#: the arena garbage-collection counters (``arena_gcs``,
#: ``arena_reclaimed``).  Schema 1 reports remain readable (`--compare`
#: accepts both); new reports are always written at the current schema.
BENCH_SCHEMA = 2
BENCH_KIND = "repro-bench-trajectory"


# ---------------------------------------------------------------------------
# Solver microbenchmarks
# ---------------------------------------------------------------------------

def _setup_acyclic_mesh():
    from repro.hermes import build_exy_graph
    from repro.network.mesh import Mesh2D

    return build_exy_graph(Mesh2D(4, 4))


def _run_acyclic_mesh(graph) -> None:
    from repro.checking.encodings import is_acyclic_by_sat

    assert is_acyclic_by_sat(graph)


def _setup_cyclic_oracle():
    from repro.core.dependency import routing_dependency_graph
    from repro.network.mesh import Mesh2D
    from repro.routing.adaptive import ZigZagRouting

    return routing_dependency_graph(ZigZagRouting(Mesh2D(4, 4)),
                                    cache=False)


def _run_cyclic_oracle(graph) -> None:
    from repro.checking.incremental import AcyclicityOracle

    assert not AcyclicityOracle(graph).is_acyclic()


def _setup_escape_ring():
    from repro.core.dependency import routing_dependency_graph
    from repro.ringnoc import build_clockwise_ring_instance

    instance = build_clockwise_ring_instance(8)
    return routing_dependency_graph(instance.routing, cache=False)


def _run_escape_ring(graph) -> None:
    from repro.core.deadlock import DeadlockQuerySession

    session = DeadlockQuerySession(graph, name="bench-ring8")
    assert not session.is_deadlock_free()
    assert session.escape_edges()


def _setup_random_3sat():
    import random

    from repro.checking.cnf import CNF

    rng = random.Random(7)
    cnf = CNF()
    for _ in range(480):
        variables = rng.sample(range(1, 121), 3)
        cnf.add_clause([var if rng.random() < 0.5 else -var
                        for var in variables])
    return cnf


def _run_random_3sat(cnf) -> None:
    from repro.checking.sat import solve_cnf

    solve_cnf(cnf)


#: The fixed microbench suite: name -> (setup, run).  The setup (graph
#: enumeration, CNF assembly) happens *outside* the timed region -- these
#: are solver benchmarks (encode + solve on a prepared input); the
#: construction side is what the portfolio benchmarks cover.  Names are
#: part of the trajectory (reports are compared across PRs by name), so
#: extend rather than rename.
SOLVER_MICROBENCHMARKS: Dict[str, Tuple[Callable[[], object],
                                        Callable[[object], None]]] = {
    "acyclic-mesh4x4-oneshot": (_setup_acyclic_mesh, _run_acyclic_mesh),
    "cyclic-zigzag4x4-oracle": (_setup_cyclic_oracle, _run_cyclic_oracle),
    "escape-ring8-incremental": (_setup_escape_ring, _run_escape_ring),
    "random3sat-120v-480c": (_setup_random_3sat, _run_random_3sat),
}


def run_solver_microbench(repeat: int = 3) -> Dict[str, Dict[str, object]]:
    """Time every microbench workload, best of ``repeat`` cold runs.

    The construction cache is reset and the input rebuilt before every
    run, so the numbers measure the engine on a cold start, not the
    warmth a previous repetition left behind.

    One crashing workload does not lose the report: its entry degrades to
    ``{"status": "error", "error": ...}`` and the remaining benchmarks
    still run -- the same graceful-degradation contract as the portfolio
    driver's scenario verdicts.
    """
    from repro.core.cache import reset_instance_cache

    results: Dict[str, Dict[str, object]] = {}
    for name, (setup, run) in SOLVER_MICROBENCHMARKS.items():
        best = float("inf")
        try:
            for _ in range(max(1, repeat)):
                reset_instance_cache()
                prepared = setup()
                started = time.perf_counter()
                run(prepared)
                best = min(best, time.perf_counter() - started)
        except Exception as exc:
            results[name] = {"status": "error",
                             "error": f"{type(exc).__name__}: {exc}"}
            continue
        results[name] = {"wall_time_s": round(best, 6)}
    return results


# ---------------------------------------------------------------------------
# Portfolio benchmarks
# ---------------------------------------------------------------------------

def profile_matrix(profile: str):
    """The scenario matrix of a bench profile, as declarative terms.

    Bench profiles run through the same spec layer as ``repro batch
    --matrix``: a profile *is* a scenario matrix, expanded by
    :func:`repro.core.spec.expand_matrix` -- so the numbers the perf
    trajectory records are numbers for the exact matrices any sharded or
    distributed sweep would run.
    """
    from repro.core.portfolio import (
        extended_matrix,
        standard_matrix,
        vc_escape_matrix,
    )

    if profile == "tiny":
        # Fast enough for a unit test; exercises mesh + ring groups.
        return standard_matrix(mesh_sizes=(3,), ring_sizes=(4,))
    if profile == "smoke":
        return (standard_matrix(mesh_sizes=(3, 4), ring_sizes=(4,))
                + vc_escape_matrix(mesh_sizes=(3,), torus_sizes=(4,),
                                   vc_counts=(1, 2)))
    if profile == "extended":
        return extended_matrix(mesh_sizes=(8, 16), ring_sizes=(8,),
                               vc_mesh_sizes=(8,), vc_counts=(1, 2, 4))
    if profile == "extended-8":
        # The extended sweep capped at 8x8 -- the largest profile that
        # stays in CI-friendly territory on one core.
        return extended_matrix(mesh_sizes=(8,), ring_sizes=(8,),
                               vc_mesh_sizes=(8,), vc_counts=(1, 2, 4))
    raise ValueError(f"unknown bench profile {profile!r}; "
                     f"expected tiny, smoke, extended-8 or extended")


def _bench_scenarios(profile: str):
    from repro.core.portfolio import scenarios_from_specs
    from repro.core.spec import expand_matrix

    return scenarios_from_specs(expand_matrix(profile_matrix(profile)))


def run_portfolio_bench(profile: str = "smoke",
                        jobs_list: Sequence[int] = (1,),
                        cross_check: bool = False,
                        trace_dir: Optional[str] = None,
                        store_dir: Optional[str] = None
                        ) -> Dict[str, object]:
    """Run the profile's portfolio once per requested job count.

    Every run re-derives the scenario list (construction cost is part of
    what the engine amortises, so it is *included* in the measured wall
    time) and resets the construction cache, making the job counts
    comparable.  The first run's verdict projection
    (:meth:`~repro.core.portfolio.PortfolioReport.comparable_dict`) is
    asserted equal for every later run -- the bench doubles as the
    parallel-determinism gate.

    ``trace_dir`` additionally records a JSONL event trace
    (:mod:`repro.core.trace`) per **serial** lane into
    ``<trace_dir>/portfolio-<profile>-jobs1.jsonl``; parallel lanes are
    never traced (writers cannot cross the pool boundary), and traced
    serial wall times include the tracing overhead by design -- the
    trace is telemetry about the run it measures.

    ``store_dir`` attaches a persistent verdict store
    (:mod:`repro.core.store`) to every lane.  The first lane populates it
    and later lanes replay from it, so the recorded wall times measure
    the *warm-cache* path -- useful for benchmarking the store itself,
    wrong for solver trajectories (leave it unset for ``BENCH_*.json``
    measurements, which must measure solving).  Each run entry then
    carries the run's ``store`` counter block.
    """
    from repro.core.cache import reset_instance_cache
    from repro.core.portfolio import run_portfolio

    runs: List[Dict[str, object]] = []
    reference_projection: Optional[Dict[str, object]] = None
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    for jobs in jobs_list:
        reset_instance_cache()
        scenarios = _bench_scenarios(profile)
        started = time.perf_counter()
        try:
            if trace_dir is not None and jobs == 1:
                from repro.core.trace import TraceWriter

                trace_path = os.path.join(
                    trace_dir, f"portfolio-{profile}-jobs1.jsonl")
                with TraceWriter(trace_path,
                                 label=f"bench {profile} jobs=1") as trace:
                    report = run_portfolio(scenarios,
                                           cross_check=cross_check,
                                           jobs=jobs, trace=trace,
                                           store=store_dir)
            else:
                report = run_portfolio(scenarios, cross_check=cross_check,
                                       jobs=jobs, store=store_dir)
        except Exception as exc:
            # One crashed lane degrades to a structured error entry; the
            # other job counts still produce their measurements.
            runs.append({"jobs": jobs, "status": "error",
                         "error": f"{type(exc).__name__}: {exc}"})
            continue
        wall = time.perf_counter() - started
        projection = report.comparable_dict()
        if reference_projection is None:
            reference_projection = projection
        elif projection != reference_projection:
            raise AssertionError(
                f"portfolio run with jobs={jobs} disagrees with the first "
                f"run -- parallel determinism is broken")
        payload = report.to_json_dict()
        entry: Dict[str, object] = {
            "jobs": report.jobs,
            "wall_time_s": round(wall, 6),
            "scenarios": len(report.verdicts),
            "deadlock_free": report.deadlock_free_count,
            "cache_hits": payload["summary"]["cache_hits"],
            "cache_misses": payload["summary"]["cache_misses"],
            "session_stats": payload["session_stats"],
            "per_scenario": [
                {"scenario": scenario["scenario"],
                 "wall_time_s": scenario["wall_time_s"],
                 "deadlock_free": scenario["deadlock_free"],
                 "solver": scenario["solver"]}
                for scenario in payload["scenarios"]],
        }
        if "store" in payload:
            entry["store"] = payload["store"]
        runs.append(entry)
    serial = next((run for run in runs
                   if run["jobs"] == 1 and "wall_time_s" in run), None)
    fastest_parallel = min(
        (run for run in runs
         if run["jobs"] != 1 and "wall_time_s" in run),
        key=lambda run: run["wall_time_s"], default=None)
    speedup = None
    if serial is not None and fastest_parallel is not None:
        speedup = round(
            serial["wall_time_s"] / max(fastest_parallel["wall_time_s"],
                                        1e-9), 3)
    return {"profile": profile, "runs": runs,
            "parallel_speedup": speedup}


# ---------------------------------------------------------------------------
# Report assembly, validation, IO
# ---------------------------------------------------------------------------

def run_benchmark(profile: str = "smoke",
                  jobs_list: Sequence[int] = (1,),
                  repeat: int = 3,
                  reference: Optional[Dict[str, object]] = None,
                  notes: Optional[str] = None,
                  trace_dir: Optional[str] = None,
                  store_dir: Optional[str] = None) -> Dict[str, object]:
    """Assemble one full bench report (microbench + portfolio trajectory).

    ``reference`` is an optional mapping with the same shape as the
    ``solver_microbench`` / ``portfolio`` sections of a previous report
    (e.g. the seed engine of the current PR); when present, speedups
    against it are recorded next to the fresh numbers.  ``trace_dir``
    records JSONL event traces of the serial portfolio lanes (see
    :func:`run_portfolio_bench`).
    """
    report: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "kind": BENCH_KIND,
        "generated": time.strftime("%Y-%m-%d"),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count() or 1,
        },
        "solver_microbench": run_solver_microbench(repeat=repeat),
        "portfolio": run_portfolio_bench(profile=profile,
                                         jobs_list=jobs_list,
                                         trace_dir=trace_dir,
                                         store_dir=store_dir),
    }
    if notes:
        report["notes"] = notes
    if reference:
        report["reference"] = reference
        speedups: Dict[str, float] = {}
        reference_micro = reference.get("solver_microbench", {})
        base_total = measured_total = 0.0
        for name, entry in report["solver_microbench"].items():
            base = reference_micro.get(name, {}).get("wall_time_s")
            if base and "wall_time_s" in entry:
                base_total += base
                measured_total += entry["wall_time_s"]
                speedups[name] = round(base / max(entry["wall_time_s"],
                                                  1e-9), 3)
        if measured_total:
            speedups["solver-suite-aggregate"] = round(
                base_total / measured_total, 3)
        # The reference is either a hand-made measurement file (flat
        # serial_wall_time_s) or a previous bench report (runs[] with a
        # jobs=1 entry).
        reference_portfolio = reference.get("portfolio", {})
        base_serial = reference_portfolio.get("serial_wall_time_s")
        if base_serial is None:
            base_serial = next(
                (run.get("wall_time_s")
                 for run in reference_portfolio.get("runs", [])
                 if run.get("jobs") == 1), None)
        timed_runs = [run for run in report["portfolio"]["runs"]
                      if "wall_time_s" in run]
        if base_serial and timed_runs:
            best = min(run["wall_time_s"] for run in timed_runs)
            speedups["portfolio-vs-reference"] = round(
                base_serial / max(best, 1e-9), 3)
        report["speedup_vs_reference"] = speedups
    return report


def validate_bench_report(report: Dict[str, object]) -> List[str]:
    """Schema gate: the list of violations (empty = valid).

    Checked by the CI ``bench-smoke`` job and by the schema-pin test, so
    reports that silently drop fields fail loudly instead of producing an
    uncomparable trajectory.
    """
    errors: List[str] = []

    def require(condition: bool, message: str) -> None:
        if not condition:
            errors.append(message)

    require(report.get("schema") == BENCH_SCHEMA,
            f"schema must be {BENCH_SCHEMA}, got {report.get('schema')!r}")
    require(report.get("kind") == BENCH_KIND,
            f"kind must be {BENCH_KIND!r}, got {report.get('kind')!r}")
    require(isinstance(report.get("generated"), str)
            and len(report.get("generated", "")) == 10,
            "generated must be a YYYY-MM-DD string")
    plat = report.get("platform")
    require(isinstance(plat, dict)
            and isinstance(plat.get("cpu_count"), int)
            and isinstance(plat.get("python"), str),
            "platform must record python and cpu_count")

    micro = report.get("solver_microbench")
    if not isinstance(micro, dict) or not micro:
        errors.append("solver_microbench must be a non-empty mapping")
    else:
        for name, entry in micro.items():
            if isinstance(entry, dict) and entry.get("status") == "error":
                require(isinstance(entry.get("error"), str),
                        f"errored microbench {name!r} must carry an "
                        f"error string")
                continue
            require(isinstance(entry, dict)
                    and isinstance(entry.get("wall_time_s"), (int, float))
                    and entry.get("wall_time_s") >= 0,
                    f"microbench {name!r} must record wall_time_s >= 0")

    portfolio = report.get("portfolio")
    if not isinstance(portfolio, dict):
        errors.append("portfolio section missing")
    else:
        runs = portfolio.get("runs")
        if not isinstance(runs, list) or not runs:
            errors.append("portfolio.runs must be a non-empty list")
        else:
            for run in runs:
                if isinstance(run, dict) and run.get("status") == "error":
                    require("jobs" in run
                            and isinstance(run.get("error"), str),
                            "errored portfolio run must carry jobs and an "
                            "error string")
                    continue
                for key in ("jobs", "wall_time_s", "scenarios",
                            "deadlock_free", "cache_hits", "cache_misses",
                            "session_stats", "per_scenario"):
                    require(key in run, f"portfolio run missing {key!r}")
                for entry in run.get("per_scenario", []):
                    for key in ("scenario", "wall_time_s", "deadlock_free",
                                "solver"):
                        require(key in entry,
                                f"per-scenario entry missing {key!r}")
    return errors


# ---------------------------------------------------------------------------
# Trajectory comparison (``repro bench --compare OLD.json NEW.json``)
# ---------------------------------------------------------------------------

def _portfolio_serial_wall(report: Dict[str, object]) -> Optional[float]:
    """The serial (jobs=1) portfolio wall time of a report, if recorded."""
    portfolio = report.get("portfolio", {})
    if not isinstance(portfolio, dict):
        return None
    flat = portfolio.get("serial_wall_time_s")
    if isinstance(flat, (int, float)):
        return float(flat)
    for run in portfolio.get("runs", []) or []:
        if run.get("jobs") == 1 and isinstance(run.get("wall_time_s"),
                                               (int, float)):
            return float(run["wall_time_s"])
    return None


def compare_bench_reports(old: Dict[str, object],
                          new: Dict[str, object],
                          threshold: float = 0.95):
    """Per-benchmark speedup of ``new`` over ``old``.

    Returns ``(rows, regressions)``: ``rows`` is a list of
    ``(name, old_s, new_s, speedup)`` tuples -- one per microbench name
    the two reports share, plus ``solver-suite-aggregate`` and (when both
    reports carry a serial run) ``portfolio-serial`` -- and
    ``regressions`` names every row whose speedup falls below
    ``threshold`` (0.95 = "new may be at most 5% slower").  Old reports
    of any schema are accepted; only the sections both reports share are
    compared, and the ``portfolio-serial`` row only when both reports ran
    the **same profile** -- wall times of different scenario matrices are
    not comparable and would fake a speedup (or regression).

    A benchmark that **errored** on either side (schema-4 ``status:
    "error"`` entries, or any entry without a ``wall_time_s``) is neither
    silently dropped nor mis-paired: it contributes a warning row whose
    ``speedup`` is ``None`` (its wall times are ``None`` where
    unavailable), is excluded from the aggregate and can never count as a
    regression.
    """
    rows: List[Tuple[str, object, object, object]] = []
    old_micro = old.get("solver_microbench", {}) or {}
    new_micro = new.get("solver_microbench", {}) or {}
    base_total = measured_total = 0.0
    for name in old_micro:
        if name not in new_micro:
            continue
        old_entry = old_micro[name] or {}
        new_entry = new_micro[name] or {}
        old_wall = old_entry.get("wall_time_s")
        new_wall = new_entry.get("wall_time_s")
        if (old_entry.get("status") == "error"
                or new_entry.get("status") == "error"
                or not old_wall or new_wall is None):
            rows.append((name, old_wall, new_wall, None))
            continue
        base_total += old_wall
        measured_total += new_wall
        rows.append((name, old_wall, new_wall,
                     round(old_wall / max(new_wall, 1e-9), 3)))
    if measured_total:
        rows.append(("solver-suite-aggregate", base_total, measured_total,
                     round(base_total / measured_total, 3)))
    old_serial = _portfolio_serial_wall(old)
    new_serial = _portfolio_serial_wall(new)
    old_profile = (old.get("portfolio") or {}).get("profile")
    new_profile = (new.get("portfolio") or {}).get("profile")
    if old_profile is not None and old_profile != new_profile:
        old_serial = None
    if old_serial and new_serial is not None:
        rows.append(("portfolio-serial", old_serial, new_serial,
                     round(old_serial / max(new_serial, 1e-9), 3)))
    regressions = [name for name, _, _, speedup in rows
                   if speedup is not None and speedup < threshold]
    return rows, regressions


def format_bench_comparison(rows, regressions,
                            threshold: float = 0.95) -> str:
    """Human-readable speedup table for :func:`compare_bench_reports`."""
    from repro.reporting.tables import format_table

    def _ms(value) -> str:
        return f"{value * 1000:.1f}" if isinstance(value,
                                                   (int, float)) else "-"

    body = []
    skipped = 0
    for name, old_wall, new_wall, speedup in rows:
        if speedup is None:
            skipped += 1
            body.append([name, _ms(old_wall), _ms(new_wall),
                         "skipped (errored)"])
        else:
            body.append([name, _ms(old_wall), _ms(new_wall),
                         f"{speedup:.2f}x"
                         + ("  REGRESSION" if name in regressions else "")])
    table = format_table(["benchmark", "old ms", "new ms", "speedup"], body)
    if skipped:
        table += (f"\nwarning: {skipped} benchmark(s) skipped -- errored "
                  f"or unmeasured on one side")
    if regressions:
        table += (f"\n{len(regressions)} regression(s) beyond the "
                  f"{threshold:.2f}x threshold: {', '.join(regressions)}")
    return table


def bench_report_path(directory: str = ".",
                      date: Optional[str] = None) -> str:
    """The canonical ``BENCH_<date>.json`` path for a report."""
    return os.path.join(directory,
                        f"BENCH_{date or time.strftime('%Y-%m-%d')}.json")


def write_bench_report(report: Dict[str, object], path: str) -> str:
    """Validate and write a report (raises on schema violations)."""
    errors = validate_bench_report(report)
    if errors:
        raise ValueError("bench report violates the schema: "
                         + "; ".join(errors))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return path


def format_bench_summary(report: Dict[str, object]) -> str:
    """A short human-readable digest of a bench report."""
    lines = [f"bench {report['generated']} "
             f"(python {report['platform']['python']}, "
             f"{report['platform']['cpu_count']} cores)"]
    for name, entry in report["solver_microbench"].items():
        if entry.get("status") == "error":
            lines.append(f"  solver {name}: ERROR ({entry['error']})")
            continue
        line = f"  solver {name}: {entry['wall_time_s'] * 1000:.1f} ms"
        speedup = report.get("speedup_vs_reference", {}).get(name)
        if speedup:
            line += f" ({speedup:.2f}x vs reference)"
        lines.append(line)
    portfolio = report["portfolio"]
    for run in portfolio["runs"]:
        if run.get("status") == "error":
            lines.append(f"  portfolio[{portfolio['profile']}] "
                         f"jobs={run['jobs']}: ERROR ({run['error']})")
            continue
        lines.append(f"  portfolio[{portfolio['profile']}] "
                     f"jobs={run['jobs']}: {run['wall_time_s']:.3f}s "
                     f"({run['scenarios']} scenarios, "
                     f"{run['cache_hits']} cache hits)")
    if portfolio.get("parallel_speedup"):
        lines.append(f"  parallel speedup: "
                     f"{portfolio['parallel_speedup']:.2f}x")
    overall = report.get("speedup_vs_reference", {}).get(
        "portfolio-vs-reference")
    if overall:
        lines.append(f"  portfolio speedup vs reference: {overall:.2f}x")
    return "\n".join(lines)
