"""The three generic GeNoC constituents: Injection, Routing, Switching.

The GeNoC methodology (paper Section III) does not give the constituents a
definition; it only characterises them by proof obligations.  These abstract
base classes are the Python counterpart of that genericity: the engine in
:mod:`repro.core.genoc`, the obligation checkers in
:mod:`repro.core.obligations` and the theorem checkers in
:mod:`repro.core.theorems` are written purely against these interfaces.

Concrete instantiations live in :mod:`repro.hermes` (the paper's case
study), :mod:`repro.routing`, :mod:`repro.switching` and
:mod:`repro.spidergon`.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional, Sequence

from repro.core.configuration import Configuration, TravelProgress
from repro.core.errors import RoutingError
from repro.core.travel import Travel
from repro.network.port import Port
from repro.network.topology import Topology


class InjectionMethod(abc.ABC):
    """``I : Σ -> Σ`` -- decides which travels are injected into the network."""

    @abc.abstractmethod
    def inject(self, config: Configuration) -> Configuration:
        """Return the configuration after injection."""

    def name(self) -> str:
        return type(self).__name__


class RoutingFunction(abc.ABC):
    """``R : P x P -> P`` -- the port-level routing function.

    The primitive is :meth:`next_hops`, mapping a current port and a
    destination port to the set of possible next hops (a singleton for
    deterministic routing functions such as XY).  The generalisation to
    configurations (``R : Σ -> Σ``) is provided by
    :meth:`route_configuration`, which pre-computes one route per travel.
    """

    #: Safety bound on route length, as a multiple of the port count.
    MAX_ROUTE_FACTOR = 4

    @abc.abstractmethod
    def next_hops(self, current: Port, destination: Port) -> List[Port]:
        """All ports the routing function may route to next."""

    @abc.abstractmethod
    def reachable(self, source: Port, destination: Port) -> bool:
        """The ``s R d`` predicate: is ``destination`` reachable from ``source``?"""

    @property
    @abc.abstractmethod
    def topology(self) -> Topology:
        """The topology this routing function is defined over."""

    # -- derived behaviour ----------------------------------------------------
    @property
    def is_deterministic(self) -> bool:
        """Deterministic routing functions return at most one next hop.

        The paper's deadlock condition (Theorem 1) applies to deterministic
        routing; adaptive extensions override this property.
        """
        return True

    def next_hop(self, current: Port, destination: Port) -> Port:
        """The unique next hop of a deterministic routing function."""
        hops = self.next_hops(current, destination)
        if not hops:
            raise RoutingError(
                f"no next hop from {current} towards {destination}")
        if len(hops) > 1 and self.is_deterministic:
            raise RoutingError(
                f"deterministic routing returned {len(hops)} hops at {current}")
        return hops[0]

    def destinations(self) -> List[Port]:
        """All valid destination ports (default: every local out-port)."""
        return self.topology.local_out_ports()

    def compute_route(self, source: Port, destination: Port,
                      max_hops: Optional[int] = None) -> List[Port]:
        """Compute the full route from ``source`` to ``destination``.

        The route includes both endpoints.  Raises :class:`RoutingError` if
        the routing function does not reach the destination within the hop
        bound (which, for a correct deterministic routing function, never
        happens for reachable destinations).
        """
        if max_hops is None:
            max_hops = self.MAX_ROUTE_FACTOR * max(self.topology.port_count, 4)
        route = [source]
        current = source
        while current != destination:
            if len(route) > max_hops:
                raise RoutingError(
                    f"route from {source} to {destination} exceeds "
                    f"{max_hops} hops: routing does not terminate")
            current = self.next_hop(current, destination)
            if not self.topology.has_port(current):
                raise RoutingError(
                    f"routing produced non-existent port {current}")
            route.append(current)
        return route

    def route_configuration(self, config: Configuration) -> Configuration:
        """``R : Σ -> Σ`` -- pre-compute the route of every pending travel."""
        routed: List[Travel] = []
        for travel in config.travels:
            if travel.has_route:
                routed.append(travel)
                continue
            if not self.reachable(travel.source, travel.destination):
                raise RoutingError(
                    f"destination {travel.destination} is not reachable "
                    f"from {travel.source}")
            route = self.compute_route(travel.source, travel.destination)
            routed.append(travel.with_route(route))
        progress = dict(config.progress)
        for travel in routed:
            if travel.travel_id not in progress:
                progress[travel.travel_id] = TravelProgress.initial(travel)
        return Configuration(travels=routed, state=config.state,
                             arrived=config.arrived, progress=progress)

    def name(self) -> str:
        return type(self).__name__


class SwitchingPolicy(abc.ABC):
    """``S : Σ -> Σ`` -- advances every message by at most one hop."""

    @abc.abstractmethod
    def step(self, config: Configuration) -> Configuration:
        """One switching step.

        Every message that can make progress advances by at most one hop;
        travels whose flits have all been ejected move from ``T`` to ``A``.
        """

    @abc.abstractmethod
    def can_progress(self, config: Configuration) -> bool:
        """``¬Ω(σ)`` -- is there any message that can make progress?"""

    def measure(self, config: Configuration) -> int:
        """Default termination measure (may be overridden).

        The default is the refined flit-hop measure, which strictly
        decreases on every non-deadlocked step of the policies shipped with
        this library.
        """
        from repro.core.measure import flit_hop_measure
        return flit_hop_measure(config)

    def name(self) -> str:
        return type(self).__name__


class IdentityInjection(InjectionMethod):
    """``Iid`` -- the identity injection method of the paper (Section V.2).

    All messages are assumed to have been injected at time 0, so the
    injection method is the identity function.  This trivially satisfies
    obligation (C-4).
    """

    def inject(self, config: Configuration) -> Configuration:
        return config

    def name(self) -> str:
        return "Iid"
