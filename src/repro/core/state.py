"""Network state ``ST``: the list of all ports with their buffers.

The paper defines the state as "the list of all the ports of the network.
Each port is associated to the list of its buffers" (Section III-B).  We
represent it as a mapping from :class:`~repro.network.port.Port` to
:class:`~repro.network.buffers.PortState` and provide the availability
queries needed by the wormhole switching policy and by the deadlock
argument of Section IV-A (the witness set ``P`` of *unavailable* ports).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.network.buffers import PortState
from repro.network.flit import Flit
from repro.network.port import Port
from repro.network.topology import Topology


class NetworkState:
    """The dynamic state of every port of the network."""

    def __init__(self, port_states: Mapping[Port, PortState]) -> None:
        self._states: Dict[Port, PortState] = dict(port_states)

    # -- construction -----------------------------------------------------------
    @classmethod
    def empty(cls, topology: Topology, capacity: int = 2,
              capacities: Optional[Mapping[Port, int]] = None) -> "NetworkState":
        """An all-empty state for ``topology``.

        ``capacity`` is the default number of 1-flit buffers per port
        (Fig. 1b shows 2 buffers per port); ``capacities`` overrides it per
        port.
        """
        states: Dict[Port, PortState] = {}
        for port in topology.ports:
            port_capacity = capacity
            if capacities is not None and port in capacities:
                port_capacity = capacities[port]
            states[port] = PortState.with_capacity(port_capacity)
        return cls(states)

    def copy(self) -> "NetworkState":
        return NetworkState({port: state.copy()
                             for port, state in self._states.items()})

    # -- access -------------------------------------------------------------------
    def __getitem__(self, port: Port) -> PortState:
        return self._states[port]

    def __contains__(self, port: Port) -> bool:
        return port in self._states

    def __iter__(self) -> Iterator[Port]:
        return iter(self._states)

    def __len__(self) -> int:
        return len(self._states)

    @property
    def ports(self) -> List[Port]:
        return list(self._states)

    def items(self) -> Iterable[Tuple[Port, PortState]]:
        return self._states.items()

    # -- availability (deadlock argument, Section IV-A) ----------------------------
    def is_available(self, port: Port) -> bool:
        """A port is available if it is unowned and has a free buffer."""
        return self._states[port].is_available

    def accepts(self, port: Port, travel_id: int) -> bool:
        """Can ``port`` accept one flit of travel ``travel_id`` right now?"""
        return self._states[port].accepts(travel_id)

    def unavailable_ports(self) -> List[Port]:
        """The witness set ``P`` used in the necessity proof of Theorem 1."""
        return [port for port, state in self._states.items()
                if not state.is_available]

    def occupied_ports(self) -> List[Port]:
        """Ports currently holding at least one flit."""
        return [port for port, state in self._states.items()
                if not state.buffer.is_empty]

    # -- aggregate queries -----------------------------------------------------------
    def total_flits(self) -> int:
        """Number of flits currently buffered anywhere in the network."""
        return sum(state.buffer.occupancy for state in self._states.values())

    def flits_of(self, travel_id: int) -> List[Tuple[Port, Flit]]:
        """All buffered flits of the given travel, with their ports."""
        result: List[Tuple[Port, Flit]] = []
        for port, state in self._states.items():
            for flit in state.buffer:
                if flit.travel_id == travel_id:
                    result.append((port, flit))
        return result

    def is_empty(self) -> bool:
        """True when no port holds any flit (the network has been evacuated)."""
        return all(state.is_empty for state in self._states.values())

    def occupancy_map(self) -> Dict[Port, int]:
        """Port -> number of buffered flits (used by metrics and traces)."""
        return {port: state.buffer.occupancy
                for port, state in self._states.items()}

    # -- mutation -----------------------------------------------------------------------
    def accept_flit(self, port: Port, flit: Flit) -> None:
        self._states[port].accept(flit)

    def release_flit(self, port: Port) -> Flit:
        return self._states[port].release()

    def __str__(self) -> str:
        occupied = [f"{port}: {state}" for port, state in self._states.items()
                    if not state.buffer.is_empty]
        if not occupied:
            return "NetworkState(empty)"
        return "NetworkState(\n  " + "\n  ".join(occupied) + "\n)"
