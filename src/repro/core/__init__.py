"""The generic GeNoC core: the paper's primary contribution.

This package contains the parametric specification framework -- travels,
configurations, the three constituent interfaces, the GeNoC interpreter, the
port dependency graph machinery, the proof obligations (C-1)-(C-5), the
three global theorems (correctness, deadlock freedom, evacuation) and the
end-to-end verification pipeline of Fig. 2.
"""

from repro.core.configuration import (
    Configuration,
    NOT_INJECTED,
    TravelProgress,
    initial_configuration,
)
from repro.core.constituents import (
    IdentityInjection,
    InjectionMethod,
    RoutingFunction,
    SwitchingPolicy,
)
from repro.core.deadlock import (
    DeadlockAnalysis,
    DeadlockQuerySession,
    analyse_deadlock,
    is_deadlock,
)
from repro.core.dependency import (
    AcyclicityReport,
    DependencyGraphSpec,
    ExplicitDependencySpec,
    channel_dependency_graph,
    check_acyclicity,
    class_subgraph,
    graph_statistics,
    routing_dependency_graph,
)
from repro.core.errors import (
    GeNoCError,
    InjectionError,
    ObligationViolation,
    RoutingError,
    SpecificationError,
    SwitchingError,
)
from repro.core.genoc import GeNoCEngine, GeNoCResult, StepRecord
from repro.core.instance import NoCInstance
from repro.core.measure import (
    flit_hop_measure,
    pending_travel_measure,
    route_length_measure,
)
from repro.core.obligations import (
    ObligationResult,
    check_c1,
    check_c2,
    check_c3,
    check_c3_incremental,
    check_c3_routing_induced,
    check_c4,
    check_c5,
    check_v1_escape_coverage,
    check_v2_escape_acyclicity,
    check_v2_incremental,
)
from repro.core.cache import (
    InstanceCache,
    instance_cache,
    reset_instance_cache,
)
from repro.core.portfolio import (
    PortfolioReport,
    Scenario,
    ScenarioVerdict,
    extended_matrix,
    extended_portfolio,
    merge_shard_reports,
    run_portfolio,
    scenarios_from_specs,
    shard_index_of,
    standard_matrix,
    standard_portfolio,
    vc_escape_matrix,
    vc_escape_portfolio,
)
from repro.core.spec import (
    ScenarioSpec,
    SpecRegistry,
    expand_matrix,
    register_builder,
    spec_registry,
)
from repro.core.pipeline import (
    VerificationReport,
    discharge_obligations,
    verify_instance,
)
from repro.core.state import NetworkState
from repro.core.theorems import (
    TheoremResult,
    check_correctness,
    check_deadlock_freedom,
    check_deadlock_freedom_incremental,
    check_deadlock_freedom_vc,
    check_deadlock_freedom_vc_incremental,
    check_evacuation,
    check_no_reachable_deadlock,
    derive_evacuation,
)
from repro.core.travel import Travel, fresh_travel_id, make_travel
from repro.core.witness import (
    DeadlockWitness,
    WitnessRoundTrip,
    cycle_to_deadlock_configuration,
    verify_witness_roundtrip,
)

__all__ = [
    "Configuration",
    "NOT_INJECTED",
    "TravelProgress",
    "initial_configuration",
    "IdentityInjection",
    "InjectionMethod",
    "RoutingFunction",
    "SwitchingPolicy",
    "DeadlockAnalysis",
    "DeadlockQuerySession",
    "analyse_deadlock",
    "is_deadlock",
    "AcyclicityReport",
    "DependencyGraphSpec",
    "ExplicitDependencySpec",
    "channel_dependency_graph",
    "check_acyclicity",
    "class_subgraph",
    "graph_statistics",
    "routing_dependency_graph",
    "GeNoCError",
    "InjectionError",
    "ObligationViolation",
    "RoutingError",
    "SpecificationError",
    "SwitchingError",
    "GeNoCEngine",
    "GeNoCResult",
    "StepRecord",
    "NoCInstance",
    "flit_hop_measure",
    "pending_travel_measure",
    "route_length_measure",
    "ObligationResult",
    "check_c1",
    "check_c2",
    "check_c3",
    "check_c3_incremental",
    "check_c3_routing_induced",
    "check_c4",
    "check_c5",
    "check_v1_escape_coverage",
    "check_v2_escape_acyclicity",
    "check_v2_incremental",
    "InstanceCache",
    "instance_cache",
    "reset_instance_cache",
    "PortfolioReport",
    "Scenario",
    "ScenarioVerdict",
    "extended_matrix",
    "extended_portfolio",
    "merge_shard_reports",
    "run_portfolio",
    "scenarios_from_specs",
    "shard_index_of",
    "standard_matrix",
    "standard_portfolio",
    "vc_escape_matrix",
    "vc_escape_portfolio",
    "ScenarioSpec",
    "SpecRegistry",
    "expand_matrix",
    "register_builder",
    "spec_registry",
    "VerificationReport",
    "discharge_obligations",
    "verify_instance",
    "NetworkState",
    "TheoremResult",
    "check_correctness",
    "check_deadlock_freedom",
    "check_deadlock_freedom_incremental",
    "check_deadlock_freedom_vc",
    "check_deadlock_freedom_vc_incremental",
    "check_evacuation",
    "check_no_reachable_deadlock",
    "derive_evacuation",
    "Travel",
    "fresh_travel_id",
    "make_travel",
    "DeadlockWitness",
    "WitnessRoundTrip",
    "cycle_to_deadlock_configuration",
    "verify_witness_roundtrip",
]
