"""Graphviz DOT export of port dependency graphs.

The paper's Fig. 3 is a drawing of the 2x2 dependency graph; this module
produces the equivalent DOT text so the figure can be rendered with Graphviz
(``dot -Tpdf``).  Ports are grouped into one cluster per processing node and
coloured by flow (Fig. 4), and dependency-cycle edges can be highlighted for
the negative examples.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.checking.graphs import DirectedGraph
from repro.network.port import Port

#: Fill colours per flow class (see :mod:`repro.hermes.flows`).
_FLOW_COLOURS = {
    "northward": "lightblue",
    "southward": "lightcyan",
    "eastward": "lightsalmon",
    "westward": "moccasin",
    "local-in": "palegreen",
    "local-out": "lightgrey",
}


def _port_id(port: Port) -> str:
    return f"p_{port.x}_{port.y}_{port.name.value}_{port.direction.value}"


def _port_label(port: Port) -> str:
    return f"{port.name.value}{'i' if port.is_input else 'o'}"


def dependency_graph_to_dot(graph: DirectedGraph[Port],
                            title: str = "Exy_dep",
                            highlight_cycle: Optional[Sequence[Port]] = None,
                            colour_by_flow: bool = True) -> str:
    """Render a port dependency graph as Graphviz DOT text."""
    highlight: Set[Tuple[Port, Port]] = set()
    if highlight_cycle:
        cycle = list(highlight_cycle)
        for index, port in enumerate(cycle):
            highlight.add((port, cycle[(index + 1) % len(cycle)]))

    lines: List[str] = [f'digraph "{title}" {{',
                        "  rankdir=LR;",
                        "  node [shape=box, style=filled, fontsize=10];"]

    nodes: Dict[Tuple[int, int], List[Port]] = {}
    for port in graph.vertices:
        nodes.setdefault(port.node, []).append(port)

    for (x, y), ports in sorted(nodes.items()):
        lines.append(f"  subgraph cluster_{x}_{y} {{")
        lines.append(f'    label="node ({x},{y})";')
        for port in sorted(ports, key=str):
            colour = "white"
            if colour_by_flow:
                from repro.hermes.flows import flow_of

                colour = _FLOW_COLOURS.get(flow_of(port).value, "white")
            lines.append(f'    {_port_id(port)} '
                         f'[label="{_port_label(port)}", fillcolor={colour}];')
        lines.append("  }")

    for source, target in sorted(graph.edges(), key=lambda e: (str(e[0]),
                                                               str(e[1]))):
        attributes = ""
        if (source, target) in highlight:
            attributes = " [color=red, penwidth=2.0]"
        lines.append(f"  {_port_id(source)} -> {_port_id(target)}{attributes};")

    lines.append("}")
    return "\n".join(lines)


def write_dot(graph: DirectedGraph[Port], path: str,
              title: str = "Exy_dep",
              highlight_cycle: Optional[Sequence[Port]] = None) -> None:
    """Write the DOT rendering of ``graph`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dependency_graph_to_dot(graph, title=title,
                                             highlight_cycle=highlight_cycle))
        handle.write("\n")
