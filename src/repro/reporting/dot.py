"""Graphviz DOT export of port and virtual-channel dependency graphs.

The paper's Fig. 3 is a drawing of the 2x2 dependency graph; this module
produces the equivalent DOT text so the figure can be rendered with Graphviz
(``dot -Tpdf``).  Ports are grouped into one cluster per processing node and
coloured by flow (Fig. 4), and dependency-cycle edges can be highlighted for
the negative examples.

Channel graphs (vertices are ``(port, vc)`` pairs, see
:mod:`repro.network.vc`) are rendered by :func:`channel_graph_to_dot` with
one cluster per node and colours by VC class: escape-class channels are
gold, adaptive classes cycle through a per-VC palette -- making the
"adaptive cycles, acyclic escape skeleton" structure of a Duato design
visible at a glance.  :func:`write_dot` dispatches automatically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.checking.graphs import DirectedGraph
from repro.network.port import Port
from repro.network.vc import VirtualChannel, port_of, vc_of

#: Fill colours per flow class (see :mod:`repro.hermes.flows`).
_FLOW_COLOURS = {
    "northward": "lightblue",
    "southward": "lightcyan",
    "eastward": "lightsalmon",
    "westward": "moccasin",
    "local-in": "palegreen",
    "local-out": "lightgrey",
}


def _port_id(port: Port) -> str:
    return f"p_{port.x}_{port.y}_{port.name.value}_{port.direction.value}"


def _port_label(port: Port) -> str:
    return f"{port.name.value}{'i' if port.is_input else 'o'}"


def dependency_graph_to_dot(graph: DirectedGraph[Port],
                            title: str = "Exy_dep",
                            highlight_cycle: Optional[Sequence[Port]] = None,
                            colour_by_flow: bool = True) -> str:
    """Render a port dependency graph as Graphviz DOT text."""
    highlight: Set[Tuple[Port, Port]] = set()
    if highlight_cycle:
        cycle = list(highlight_cycle)
        for index, port in enumerate(cycle):
            highlight.add((port, cycle[(index + 1) % len(cycle)]))

    lines: List[str] = [f'digraph "{title}" {{',
                        "  rankdir=LR;",
                        "  node [shape=box, style=filled, fontsize=10];"]

    nodes: Dict[Tuple[int, int], List[Port]] = {}
    for port in graph.vertices:
        nodes.setdefault(port.node, []).append(port)

    for (x, y), ports in sorted(nodes.items()):
        lines.append(f"  subgraph cluster_{x}_{y} {{")
        lines.append(f'    label="node ({x},{y})";')
        for port in sorted(ports, key=str):
            colour = "white"
            if colour_by_flow:
                from repro.hermes.flows import flow_of

                colour = _FLOW_COLOURS.get(flow_of(port).value, "white")
            lines.append(f'    {_port_id(port)} '
                         f'[label="{_port_label(port)}", fillcolor={colour}];')
        lines.append("  }")

    for source, target in sorted(graph.edges(), key=lambda e: (str(e[0]),
                                                               str(e[1]))):
        attributes = ""
        if (source, target) in highlight:
            attributes = " [color=red, penwidth=2.0]"
        lines.append(f"  {_port_id(source)} -> {_port_id(target)}{attributes};")

    lines.append("}")
    return "\n".join(lines)


#: Fill colour of escape-class channels and the per-VC adaptive palette.
_ESCAPE_COLOUR = "gold"
_VC_COLOURS = ("lightblue", "lightsalmon", "palegreen", "plum",
               "lightcyan", "moccasin", "thistle", "khaki")


def _channel_id(channel: VirtualChannel) -> str:
    port = port_of(channel)
    return (f"c_{port.x}_{port.y}_{port.name.value}_"
            f"{port.direction.value}_{vc_of(channel)}")


def _channel_label(channel: VirtualChannel) -> str:
    port = port_of(channel)
    return (f"{port.name.value}{'i' if port.is_input else 'o'}"
            f"#{vc_of(channel)}")


def channel_graph_to_dot(graph: DirectedGraph,
                         title: str = "channel_dep",
                         escape_vcs: Iterable[int] = (0,),
                         highlight_cycle: Optional[Sequence] = None) -> str:
    """Render a ``(port, vc)`` channel dependency graph as DOT text.

    Channels cluster per processing node and are coloured by VC class:
    escape-class channels (``vc in escape_vcs``) are gold, adaptive VCs
    cycle through a per-VC palette.  Pass the escape class of the relation
    (``relation.escape_vcs``) to match the (V-1)/(V-2) story.
    """
    escape = set(escape_vcs)
    highlight: Set[Tuple] = set()
    if highlight_cycle:
        cycle = list(highlight_cycle)
        for index, channel in enumerate(cycle):
            highlight.add((channel, cycle[(index + 1) % len(cycle)]))

    lines: List[str] = [f'digraph "{title}" {{',
                        "  rankdir=LR;",
                        "  node [shape=box, style=filled, fontsize=10];"]

    nodes: Dict[Tuple[int, int], List] = {}
    for channel in graph.vertices:
        nodes.setdefault(port_of(channel).node, []).append(channel)

    for (x, y), channels in sorted(nodes.items()):
        lines.append(f"  subgraph cluster_{x}_{y} {{")
        lines.append(f'    label="node ({x},{y})";')
        for channel in sorted(channels, key=str):
            vc = vc_of(channel)
            if vc in escape:
                colour = _ESCAPE_COLOUR
            else:
                colour = _VC_COLOURS[vc % len(_VC_COLOURS)]
            lines.append(f'    {_channel_id(channel)} '
                         f'[label="{_channel_label(channel)}", '
                         f'fillcolor={colour}];')
        lines.append("  }")

    for source, target in sorted(graph.edges(), key=lambda e: (str(e[0]),
                                                               str(e[1]))):
        attributes = []
        if (source, target) in highlight:
            attributes.append("color=red, penwidth=2.0")
        elif vc_of(source) in escape and vc_of(target) in escape:
            attributes.append("penwidth=1.4")
        suffix = f" [{', '.join(attributes)}]" if attributes else ""
        lines.append(f"  {_channel_id(source)} -> "
                     f"{_channel_id(target)}{suffix};")

    lines.append("}")
    return "\n".join(lines)


def write_dot(graph: DirectedGraph[Port], path: str,
              title: str = "Exy_dep",
              highlight_cycle: Optional[Sequence[Port]] = None,
              escape_vcs: Iterable[int] = (0,)) -> None:
    """Write the DOT rendering of ``graph`` to ``path``.

    Dispatches on the vertex type: channel graphs get the VC-coloured
    rendering, port graphs the paper's Fig. 3 style.
    """
    vertices = graph.vertices
    is_channel_graph = any(isinstance(vertex, VirtualChannel)
                           for vertex in vertices)
    if is_channel_graph:
        text = channel_graph_to_dot(graph, title=title,
                                    escape_vcs=escape_vcs,
                                    highlight_cycle=highlight_cycle)
    else:
        text = dependency_graph_to_dot(graph, title=title,
                                       highlight_cycle=highlight_cycle)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.write("\n")
