"""Plain-text and markdown table formatting for benchmark output."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Format rows as an aligned plain-text table."""
    columns = len(headers)
    widths = [len(str(header)) for header in headers]
    text_rows: List[List[str]] = []
    for row in rows:
        cells = [str(cell) for cell in row]
        if len(cells) != columns:
            raise ValueError(
                f"row has {len(cells)} cells, expected {columns}: {row!r}")
        text_rows.append(cells)
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(header).ljust(widths[index])
                            for index, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for cells in text_rows:
        lines.append("  ".join(cell.ljust(widths[index])
                               for index, cell in enumerate(cells)))
    return "\n".join(lines)


def rows_to_markdown(headers: Sequence[str],
                     rows: Sequence[Sequence[object]]) -> str:
    """Format rows as a GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(str(header) for header in headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def dicts_to_rows(records: Sequence[Mapping[str, object]],
                  keys: Sequence[str]) -> List[List[object]]:
    """Project a list of dicts onto a fixed key order."""
    return [[record.get(key, "") for key in keys] for record in records]


def verdict_cell(status: object, deadlock_free: object) -> str:
    """The one-cell rendering of a scenario outcome.

    Shared by every table that prints scenario verdicts (portfolio
    reports, trace summaries) so a ``timeout``/``error`` scenario is
    never mistaken for a decided one: only ``status == "ok"`` rows show
    ``free``/``DEADLOCK-PRONE``; failures show their status, upper-cased
    to match the severity styling of ``DEADLOCK-PRONE``.
    """
    if status in (None, "ok"):
        return "free" if deadlock_free else "DEADLOCK-PRONE"
    return str(status).upper()
