"""Reporting: the Table I analogue and table formatting."""

from repro.reporting.effort import (
    EffortRow,
    EffortTable,
    build_effort_table,
    PAPER_TABLE_I,
)
from repro.reporting.tables import format_table, rows_to_markdown

__all__ = [
    "EffortRow",
    "EffortTable",
    "build_effort_table",
    "PAPER_TABLE_I",
    "format_table",
    "rows_to_markdown",
]
