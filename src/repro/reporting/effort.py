"""The verification-effort table (the analogue of the paper's Table I).

Table I of the paper reports, per proof-development component, the number of
source lines ("Lines"), theorems ("Thms"), functions ("Fns"), CPU minutes to
replay the proofs ("CPU") and human days of interaction ("Hmn").  An ACL2
development and a Python reproduction cannot be compared line-for-line, so
the analogue reported here keeps the table's *structure* and semantic
columns while measuring the Python artefacts:

* **Lines** -- source lines of the repro modules implementing the component;
* **Checks** (analogue of "Thms") -- number of elementary checks discharged
  by the automated obligation/theorem checkers for the component;
* **Fns** -- number of functions/methods defined in the implementing
  modules;
* **CPU (s)** -- wall-clock seconds to discharge the component's checks;
* **Paper** columns -- the values the paper reports, for side-by-side
  comparison in EXPERIMENTS.md.

As in the paper, only the upper part of the table (the HERMES-specific
components) depends on the instantiation; the generic rows measure the
framework itself and are the same for every instance.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.reporting.tables import format_table

#: The paper's Table I, for comparison: component -> (Lines, Thms, Fns, CPU
#: minutes, Human days).  "None" marks the N/A entries.
PAPER_TABLE_I: Dict[str, Tuple[int, int, int, int, Optional[int]]] = {
    "Rxy": (1173, 97, 42, 16, 4),
    "Iid, (C-4)": (47, 4, 2, 1, 0),
    "Swh, (C-5)": (1434, 151, 25, 17, 6),
    "(C-1)xy": (483, 40, 7, 17, 2),
    "(C-2)xy": (435, 51, 0, 51, 2),
    "(C-3)xy": (1018, 81, 10, 28, 4),
    "Generic Defs": (3127, 234, 85, 2, None),
    "CorrThm": (2267, 65, 11, 6, None),
    "Dead/EvacThm": (3277, 285, 125, 6, None),
    "Overall": (13261, 1008, 307, 144, 20),
}

#: Which repro modules implement each component (used for the Lines/Fns
#: columns).
COMPONENT_MODULES: Dict[str, List[str]] = {
    "Rxy": ["repro.routing.xy", "repro.routing.dimension_order",
            "repro.hermes.ports"],
    "Iid, (C-4)": ["repro.hermes.injection"],
    "Swh, (C-5)": ["repro.switching.wormhole", "repro.core.measure"],
    "(C-1)xy": ["repro.hermes.dependency"],
    "(C-2)xy": ["repro.hermes.ports"],
    "(C-3)xy": ["repro.hermes.flows"],
    "Generic Defs": ["repro.core.configuration", "repro.core.constituents",
                     "repro.core.state", "repro.core.travel",
                     "repro.core.genoc", "repro.network.port",
                     "repro.network.topology", "repro.network.mesh"],
    "CorrThm": ["repro.core.theorems"],
    "Dead/EvacThm": ["repro.core.deadlock", "repro.core.dependency",
                     "repro.core.witness", "repro.core.obligations"],
}


@dataclass
class EffortRow:
    """One row of the effort table."""

    component: str
    lines: int
    checks: int
    functions: int
    cpu_seconds: float
    paper_lines: Optional[int] = None
    paper_thms: Optional[int] = None
    paper_fns: Optional[int] = None
    paper_cpu_minutes: Optional[int] = None
    paper_human_days: Optional[int] = None

    def as_cells(self) -> List[object]:
        return [
            self.component, self.lines, self.checks, self.functions,
            f"{self.cpu_seconds:.3f}",
            self.paper_lines if self.paper_lines is not None else "N/A",
            self.paper_thms if self.paper_thms is not None else "N/A",
            self.paper_fns if self.paper_fns is not None else "N/A",
            self.paper_cpu_minutes if self.paper_cpu_minutes is not None else "N/A",
            self.paper_human_days if self.paper_human_days is not None else "N/A",
        ]


@dataclass
class EffortTable:
    """The full effort table for one HERMES instance."""

    instance_name: str
    rows: List[EffortRow] = field(default_factory=list)

    HEADERS = ["Component", "Lines", "Checks", "Fns", "CPU (s)",
               "Paper Lines", "Paper Thms", "Paper Fns", "Paper CPU (min)",
               "Paper Hmn (days)"]

    def overall(self) -> EffortRow:
        paper = PAPER_TABLE_I["Overall"]
        return EffortRow(
            component="Overall",
            lines=sum(row.lines for row in self.rows),
            checks=sum(row.checks for row in self.rows),
            functions=sum(row.functions for row in self.rows),
            cpu_seconds=sum(row.cpu_seconds for row in self.rows),
            paper_lines=paper[0], paper_thms=paper[1], paper_fns=paper[2],
            paper_cpu_minutes=paper[3], paper_human_days=paper[4])

    def formatted(self) -> str:
        rows = [row.as_cells() for row in self.rows]
        rows.append(self.overall().as_cells())
        return format_table(self.HEADERS, rows,
                            title=f"Verification effort ({self.instance_name})")

    def row(self, component: str) -> EffortRow:
        for candidate in self.rows:
            if candidate.component == component:
                return candidate
        raise KeyError(component)


def _module_metrics(module_names: Sequence[str]) -> Tuple[int, int]:
    """Source lines and function count of the given modules."""
    import importlib

    lines = 0
    functions = 0
    for name in module_names:
        module = importlib.import_module(name)
        try:
            source = inspect.getsource(module)
        except (OSError, TypeError):  # pragma: no cover - compiled modules
            continue
        lines += len(source.splitlines())
        for _, obj in inspect.getmembers(module):
            if inspect.isfunction(obj) and obj.__module__ == name:
                functions += 1
            elif inspect.isclass(obj) and obj.__module__ == name:
                functions += len([m for _, m in inspect.getmembers(
                    obj, predicate=inspect.isfunction)
                    if m.__qualname__.startswith(obj.__name__)])
    return lines, functions


def build_effort_table(width: int, height: int,
                       buffer_capacity: int = 2,
                       c3_methods: Sequence[str] = ("dfs", "scc", "toposort"),
                       workloads=None) -> EffortTable:
    """Discharge everything for a mesh and assemble the Table I analogue."""
    from repro.core.theorems import (
        check_correctness,
        check_deadlock_freedom,
        check_evacuation,
    )
    from repro.hermes.proofs import default_workloads, discharge_all

    report = discharge_all(width, height, workloads=workloads,
                           buffer_capacity=buffer_capacity,
                           c3_methods=c3_methods)
    instance = report.instance
    if workloads is None:
        workloads = default_workloads(instance)

    # CorrThm / EvacThm: run the workloads and verify the runtime facets.
    corr_start = time.perf_counter()
    corr_checks = 0
    evac_checks = 0
    evac_seconds = 0.0
    for workload in workloads:
        original = instance.initial_configuration(workload)
        result = instance.engine().run(original.copy())
        corr = check_correctness(instance, original, result)
        corr_checks += corr.checks
        evac_start = time.perf_counter()
        evac = check_evacuation(instance, original, result)
        evac_seconds += time.perf_counter() - evac_start
        evac_checks += evac.checks
    corr_seconds = time.perf_counter() - corr_start - evac_seconds

    # Dead/EvacThm row: derive DeadThm from the obligations (already timed in
    # the report) and add the evacuation runtime checks.
    dead_start = time.perf_counter()
    dead = check_deadlock_freedom(instance, methods=c3_methods)
    dead_seconds = time.perf_counter() - dead_start

    # Rxy row: route-computation checks (every source node to every
    # destination, route terminates and ends at the destination).
    rxy_start = time.perf_counter()
    rxy_checks = 0
    for source in instance.topology.local_in_ports():
        for destination in instance.routing.destinations():
            route = instance.routing.compute_route(source, destination)
            assert route[-1] == destination
            rxy_checks += 1
    rxy_seconds = time.perf_counter() - rxy_start

    component_data: Dict[str, Tuple[int, float]] = {
        "Rxy": (rxy_checks, rxy_seconds),
        "Iid, (C-4)": (report.results["C-4"].checks,
                       report.results["C-4"].elapsed_seconds),
        "Swh, (C-5)": (report.results["C-5"].checks,
                       report.results["C-5"].elapsed_seconds),
        "(C-1)xy": (report.results["C-1"].checks,
                    report.results["C-1"].elapsed_seconds),
        "(C-2)xy": (report.results["C-2"].checks,
                    report.results["C-2"].elapsed_seconds),
        "(C-3)xy": (report.results["C-3"].checks,
                    report.results["C-3"].elapsed_seconds),
        "Generic Defs": (0, 0.0),
        "CorrThm": (corr_checks, corr_seconds),
        "Dead/EvacThm": (dead.checks + evac_checks,
                         dead_seconds + evac_seconds),
    }

    table = EffortTable(instance_name=instance.name)
    for component, modules in COMPONENT_MODULES.items():
        lines, functions = _module_metrics(modules)
        checks, seconds = component_data[component]
        paper = PAPER_TABLE_I.get(component)
        table.rows.append(EffortRow(
            component=component, lines=lines, checks=checks,
            functions=functions, cpu_seconds=seconds,
            paper_lines=paper[0] if paper else None,
            paper_thms=paper[1] if paper else None,
            paper_fns=paper[2] if paper else None,
            paper_cpu_minutes=paper[3] if paper else None,
            paper_human_days=paper[4] if paper else None))
    return table
