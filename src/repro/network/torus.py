"""A 2D torus topology (mesh with wrap-around links).

The torus is not used by the paper's HERMES instantiation but serves as an
extension topology: plain dimension-order routing on a torus *does* create
cycles in the port dependency graph (because of the wrap-around links), which
makes it a useful negative example for the deadlock condition of Theorem 1
and a motivation for dateline-style routing restrictions.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.network.node import Node
from repro.network.port import Direction, OFFSETS, Port, PortName, opposite
from repro.network.topology import Topology


class Torus2D(Topology):
    """A ``width x height`` 2D torus: every node has all five port names."""

    def __init__(self, width: int, height: int) -> None:
        if width < 2 or height < 2:
            raise ValueError("torus dimensions must be at least 2x2")
        self.width = int(width)
        self.height = int(height)
        super().__init__()

    def build_nodes(self) -> Iterable[Node]:
        for y in range(self.height):
            for x in range(self.width):
                yield Node(x, y)

    def connect(self, out_port: Port) -> Optional[Port]:
        if out_port.name is PortName.LOCAL:
            return None
        dx, dy = OFFSETS[out_port.name]
        nx = (out_port.x + dx) % self.width
        ny = (out_port.y + dy) % self.height
        return Port(nx, ny, opposite(out_port.name), Direction.IN)

    def wrap(self, x: int, y: int) -> Tuple[int, int]:
        return (x % self.width, y % self.height)

    def ring_distance(self, a: int, b: int, size: int) -> int:
        """Shortest distance between two coordinates on a ring of ``size``."""
        diff = abs(a - b)
        return min(diff, size - diff)

    def torus_distance(self, a: Tuple[int, int], b: Tuple[int, int]) -> int:
        return (self.ring_distance(a[0], b[0], self.width)
                + self.ring_distance(a[1], b[1], self.height))

    def __str__(self) -> str:
        return f"Torus2D({self.width}x{self.height})"
