"""Flits: the unit of transfer of wormhole switching.

HERMES uses wormhole switching (paper Section II): a message is decomposed
into flits.  The header flit carries the routing information (in our model,
the travel it belongs to), the following body flits carry the payload and the
last flit is the tail.  A message of ``n`` flits is modelled as one header,
``n - 2`` body flits and one tail (a 1-flit message is a single header that is
also the tail).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FlitKind(str, enum.Enum):
    """Role of a flit inside its worm."""

    HEADER = "H"
    BODY = "B"
    TAIL = "T"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlitKind.{self.name}"


@dataclass(frozen=True)
class Flit:
    """A single flit of a message.

    Attributes
    ----------
    travel_id:
        Identifier of the travel (message) this flit belongs to.
    index:
        Position of the flit inside its message, starting at 0 for the
        header.
    kind:
        Whether this flit is the header, a body flit or the tail.
    """

    travel_id: int
    index: int
    kind: FlitKind

    @property
    def is_header(self) -> bool:
        return self.kind is FlitKind.HEADER

    @property
    def is_tail(self) -> bool:
        return self.kind is FlitKind.TAIL

    def __str__(self) -> str:
        return f"{self.kind.value}{self.travel_id}.{self.index}"


def make_flits(travel_id: int, num_flits: int) -> list:
    """Build the flit sequence of a ``num_flits``-flit message.

    The first flit is the header and the last the tail; a single-flit message
    consists of one flit that is simultaneously header and tail (we classify
    it as a header, and the switching policy treats a header with no
    followers as also being the tail).
    """
    if num_flits < 1:
        raise ValueError("a message has at least one flit")
    flits = []
    for index in range(num_flits):
        if index == 0:
            kind = FlitKind.HEADER
        elif index == num_flits - 1:
            kind = FlitKind.TAIL
        else:
            kind = FlitKind.BODY
        flits.append(Flit(travel_id=travel_id, index=index, kind=kind))
    return flits
