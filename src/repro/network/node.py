"""Processing nodes: an IP core plus a switch with five bidirectional ports.

The paper (Fig. 1b) models a HERMES processing node as a central switch with
in- and out-ports for each cardinal direction plus a local in-port (message
injection from the IP core) and a local out-port (message ejection to the IP
core).  Nodes at the boundary of the mesh simply lack the ports that would
point outside the mesh.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.network.port import CARDINALS, Direction, Port, PortName


@dataclass
class Node:
    """A processing node identified by its coordinates.

    Attributes
    ----------
    x, y:
        Node coordinates in the topology.
    present_names:
        The port names physically present on this node.  A corner node of a
        mesh has only two cardinal names plus LOCAL; an interior node has all
        five.
    """

    x: int
    y: int
    present_names: Tuple[PortName, ...] = field(
        default=(PortName.EAST, PortName.WEST, PortName.NORTH, PortName.SOUTH,
                 PortName.LOCAL)
    )

    @property
    def coordinates(self) -> Tuple[int, int]:
        return (self.x, self.y)

    def ports(self) -> List[Port]:
        """All ports of the node (one IN and one OUT per present name)."""
        result: List[Port] = []
        for name in self.present_names:
            result.append(Port(self.x, self.y, name, Direction.IN))
            result.append(Port(self.x, self.y, name, Direction.OUT))
        return result

    def port(self, name: PortName, direction: Direction) -> Port:
        """The port of this node with the given name and direction."""
        if name not in self.present_names:
            raise KeyError(f"node {self.coordinates} has no {name.value} port")
        return Port(self.x, self.y, name, direction)

    def in_ports(self) -> List[Port]:
        return [p for p in self.ports() if p.is_input]

    def out_ports(self) -> List[Port]:
        return [p for p in self.ports() if p.is_output]

    def cardinal_names(self) -> List[PortName]:
        return [name for name in self.present_names if name in CARDINALS]

    @property
    def local_in(self) -> Port:
        """The injection port of the node (from the IP core into the switch)."""
        return Port(self.x, self.y, PortName.LOCAL, Direction.IN)

    @property
    def local_out(self) -> Port:
        """The ejection port of the node (from the switch to the IP core)."""
        return Port(self.x, self.y, PortName.LOCAL, Direction.OUT)

    @property
    def degree(self) -> int:
        """Number of cardinal neighbours of this node."""
        return len(self.cardinal_names())

    def __str__(self) -> str:
        names = "".join(name.value for name in self.present_names)
        return f"Node({self.x},{self.y})[{names}]"


def node_index(nodes: Iterable[Node]) -> Dict[Tuple[int, int], Node]:
    """Index a collection of nodes by their coordinates."""
    index: Dict[Tuple[int, int], Node] = {}
    for node in nodes:
        if node.coordinates in index:
            raise ValueError(f"duplicate node at {node.coordinates}")
        index[node.coordinates] = node
    return index
