"""Ports: the atomic resources of the port-level NoC formalization.

The paper (Section V.1) represents a port as a tuple ``<x, y, P, D>`` where
``x`` and ``y`` are the coordinates of the processing node, ``P`` is the port
name (East, West, North, South or Local) and ``D`` the direction (IN or OUT).
This module provides that tuple as an immutable, hashable dataclass together
with the port algebra used throughout the paper:

* ``trans(p, name, direction)`` -- the port with the given name/direction in
  the *same* processing node as ``p``.
* ``next_in(p)`` -- the in-port of the neighbouring node connected to the
  out-port ``p`` (e.g. ``next_in(<0,0,E,OUT>) = <1,0,W,IN>``).
* ``opposite(name)`` -- the cardinal opposite of a port name.

Coordinate convention (matching the paper's routing function): ``x`` grows
towards the East and ``y`` grows towards the *South*; i.e. routing North
decreases ``y``.  This matches ``Rxy`` in Section V.3 where the next hop is
the North out-port when ``y(d) < y(p)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class Direction(str, enum.Enum):
    """Direction of a port: input into the switch or output from it."""

    IN = "IN"
    OUT = "OUT"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Direction.{self.name}"


class PortName(str, enum.Enum):
    """The five port names of a HERMES-style switch (Fig. 1b)."""

    EAST = "E"
    WEST = "W"
    NORTH = "N"
    SOUTH = "S"
    LOCAL = "L"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PortName.{self.name}"


#: Cardinal port names (every name except LOCAL).
CARDINALS: Tuple[PortName, ...] = (
    PortName.EAST,
    PortName.WEST,
    PortName.NORTH,
    PortName.SOUTH,
)

_OPPOSITE = {
    PortName.EAST: PortName.WEST,
    PortName.WEST: PortName.EAST,
    PortName.NORTH: PortName.SOUTH,
    PortName.SOUTH: PortName.NORTH,
}

#: Coordinate offset of the neighbouring node reached through a cardinal
#: out-port.  ``y`` grows towards the South (see module docstring).
OFFSETS = {
    PortName.EAST: (1, 0),
    PortName.WEST: (-1, 0),
    PortName.NORTH: (0, -1),
    PortName.SOUTH: (0, 1),
}


@dataclass(frozen=True, order=True)
class Port:
    """A port ``<x, y, P, D>`` of a processing node.

    Ports are immutable and hashable so they can be used as graph vertices,
    dictionary keys in network states and members of dependency-graph edge
    sets.
    """

    x: int
    y: int
    name: PortName
    direction: Direction

    # -- accessors mirroring the paper's notation ---------------------------
    @property
    def node(self) -> Tuple[int, int]:
        """Coordinates ``(x, y)`` of the processing node owning this port."""
        return (self.x, self.y)

    @property
    def is_input(self) -> bool:
        return self.direction is Direction.IN

    @property
    def is_output(self) -> bool:
        return self.direction is Direction.OUT

    @property
    def is_local(self) -> bool:
        return self.name is PortName.LOCAL

    @property
    def is_cardinal(self) -> bool:
        return self.name is not PortName.LOCAL

    def with_name(self, name: PortName, direction: Direction) -> "Port":
        """Return the port with the given name/direction on the same node."""
        return Port(self.x, self.y, name, direction)

    def __str__(self) -> str:
        return f"<{self.x},{self.y},{self.name.value},{self.direction.value}>"


# ---------------------------------------------------------------------------
# Port algebra (paper Section V.1)
# ---------------------------------------------------------------------------

def dir_of(p: Port) -> Direction:
    """``dir(p)`` of the paper: the direction of port ``p``."""
    return p.direction


def port_name(p: Port) -> PortName:
    """``port(p)`` of the paper: the name of port ``p``."""
    return p.name


def x_of(p: Port) -> int:
    """``x(p)`` of the paper."""
    return p.x


def y_of(p: Port) -> int:
    """``y(p)`` of the paper."""
    return p.y


def trans(p: Port, name: PortName, direction: Direction) -> Port:
    """``trans(p, PD)`` of the paper.

    Return the port specified by ``(name, direction)`` located in the same
    processing node as ``p``.
    """
    return Port(p.x, p.y, name, direction)


def opposite(name: PortName) -> PortName:
    """Return the opposite cardinal name; raises for LOCAL."""
    if name is PortName.LOCAL:
        raise ValueError("the Local port has no opposite")
    return _OPPOSITE[name]


def next_in(p: Port) -> Port:
    """``next_in(p)`` of the paper.

    Return the in-port physically connected to the out-port ``p``:

    * a cardinal out-port connects to the opposite in-port of the adjacent
      node (e.g. ``next_in(<0,0,E,OUT>) = <1,0,W,IN>``);
    * a local out-port connects to the local IP core; the paper treats it as
      a network sink, so requesting its ``next_in`` is an error.

    ``p`` must be an out-port.
    """
    if p.direction is not Direction.OUT:
        raise ValueError(f"next_in is only defined for out-ports, got {p}")
    if p.name is PortName.LOCAL:
        raise ValueError(
            f"local out-port {p} connects to the IP core, not to another port"
        )
    dx, dy = OFFSETS[p.name]
    return Port(p.x + dx, p.y + dy, opposite(p.name), Direction.IN)


def neighbour_node(p: Port) -> Tuple[int, int]:
    """Coordinates of the node an out-port ``p`` points towards."""
    if p.name is PortName.LOCAL:
        return p.node
    dx, dy = OFFSETS[p.name]
    return (p.x + dx, p.y + dy)


def parse_port(text: str) -> Port:
    """Parse the string form ``<x,y,P,D>`` back into a :class:`Port`.

    This is the inverse of :meth:`Port.__str__` and is used by trace readers
    and example scripts.
    """
    stripped = text.strip()
    if not (stripped.startswith("<") and stripped.endswith(">")):
        raise ValueError(f"not a port literal: {text!r}")
    fields = stripped[1:-1].split(",")
    if len(fields) != 4:
        raise ValueError(f"a port literal has four fields: {text!r}")
    x_str, y_str, name_str, dir_str = (field.strip() for field in fields)
    return Port(int(x_str), int(y_str), PortName(name_str), Direction(dir_str))
