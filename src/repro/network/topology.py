"""Generic topology machinery.

A :class:`Topology` is the structural part of a GeNoC network model: which
nodes exist, which ports they have and how out-ports connect to in-ports.
It is deliberately independent of routing and switching -- those are the
GeNoC constituents supplied by the user (paper Section III).

Concrete topologies (2D mesh, torus, ring, spidergon) subclass
:class:`Topology` and provide the node list and the connection function.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.network.node import Node
from repro.network.port import Direction, Port, PortName


class Topology(abc.ABC):
    """Abstract base class of network topologies.

    Subclasses implement :meth:`build_nodes` and :meth:`connect`.  The base
    class derives the port set, adjacency queries and consistency checks from
    those two primitives.
    """

    def __init__(self) -> None:
        self._nodes: Dict[Tuple[int, int], Node] = {}
        for node in self.build_nodes():
            if node.coordinates in self._nodes:
                raise ValueError(f"duplicate node {node.coordinates}")
            self._nodes[node.coordinates] = node
        self._ports: List[Port] = []
        for node in self._nodes.values():
            self._ports.extend(node.ports())
        self._port_set: Set[Port] = set(self._ports)
        self._links = self._build_links()

    # -- primitives provided by subclasses -----------------------------------
    @abc.abstractmethod
    def build_nodes(self) -> Iterable[Node]:
        """Yield the nodes of the topology."""

    @abc.abstractmethod
    def connect(self, out_port: Port) -> Optional[Port]:
        """Return the in-port connected to ``out_port``.

        ``None`` means the out-port is a network sink (e.g. a local out-port
        feeding the IP core).
        """

    # -- derived structure ----------------------------------------------------
    def _build_links(self) -> Dict[Port, Port]:
        links: Dict[Port, Port] = {}
        for port in self._ports:
            if not port.is_output:
                continue
            target = self.connect(port)
            if target is None:
                continue
            if target not in self._port_set:
                raise ValueError(
                    f"out-port {port} connects to {target}, which does not exist"
                )
            if not target.is_input:
                raise ValueError(f"out-port {port} connects to non-input {target}")
            links[port] = target
        return links

    # -- queries ---------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def node_at(self, x: int, y: int) -> Node:
        return self._nodes[(x, y)]

    def has_node(self, x: int, y: int) -> bool:
        return (x, y) in self._nodes

    @property
    def ports(self) -> List[Port]:
        """All ports of the network, in deterministic order."""
        return list(self._ports)

    @property
    def port_count(self) -> int:
        return len(self._ports)

    def has_port(self, port: Port) -> bool:
        return port in self._port_set

    def local_in_ports(self) -> List[Port]:
        """All injection ports of the network."""
        return [node.local_in for node in self._nodes.values()]

    def local_out_ports(self) -> List[Port]:
        """All ejection ports of the network."""
        return [node.local_out for node in self._nodes.values()]

    def link_target(self, out_port: Port) -> Optional[Port]:
        """The in-port physically connected to ``out_port`` (None for sinks)."""
        return self._links.get(out_port)

    @property
    def links(self) -> Dict[Port, Port]:
        """Mapping from every connected out-port to the in-port it feeds."""
        return dict(self._links)

    def neighbours(self, node: Node) -> List[Node]:
        """Nodes reachable from ``node`` through one physical link."""
        result = []
        seen: Set[Tuple[int, int]] = set()
        for port in node.out_ports():
            target = self.link_target(port)
            if target is None:
                continue
            if target.node not in seen:
                seen.add(target.node)
                result.append(self._nodes[target.node])
        return result

    # -- validity ---------------------------------------------------------------
    def validate(self) -> None:
        """Check structural sanity of the topology.

        * every connected out-port feeds an existing in-port (checked at
          construction);
        * links are symmetric at node level: if node A has an out-port to
          node B, node B has an out-port back to node A (all topologies in
          this library use bidirectional links);
        * every node has a local in- and out-port.
        """
        for node in self._nodes.values():
            if PortName.LOCAL not in node.present_names:
                raise ValueError(f"node {node.coordinates} has no local port")
        for out_port, in_port in self._links.items():
            back_candidates = [
                p for p in self._nodes[in_port.node].out_ports()
                if self.link_target(p) is not None
                and self.link_target(p).node == out_port.node
            ]
            if not back_candidates:
                raise ValueError(
                    f"link {out_port} -> {in_port} has no reverse link"
                )

    # -- description --------------------------------------------------------------
    def describe(self) -> Dict[str, int]:
        """Structural summary used by the Fig. 1 benchmark and examples."""
        return {
            "nodes": self.node_count,
            "ports": self.port_count,
            "links": len(self._links),
            "injection_ports": len(self.local_in_ports()),
            "ejection_ports": len(self.local_out_ports()),
        }


class ExplicitTopology(Topology):
    """A topology given by an explicit node list and connection mapping.

    Useful for constructing small custom networks in tests and in the
    ``custom_noc`` example without writing a new subclass.
    """

    def __init__(self, nodes: Sequence[Node],
                 connections: Dict[Port, Port]) -> None:
        self._explicit_nodes = list(nodes)
        self._explicit_connections = dict(connections)
        super().__init__()

    def build_nodes(self) -> Iterable[Node]:
        return list(self._explicit_nodes)

    def connect(self, out_port: Port) -> Optional[Port]:
        return self._explicit_connections.get(out_port)
