"""Network model substrate for the GeNoC reproduction.

This package provides the concrete data structures that parametric NoC
specifications are built from:

* :mod:`repro.network.port` -- ports, the atomic addressable resources of the
  paper's port-level formalization (Section V.1 of the paper).
* :mod:`repro.network.flit` -- flits, the unit of wormhole switching.
* :mod:`repro.network.buffers` -- FIFO flit buffers attached to ports.
* :mod:`repro.network.node` -- processing nodes (switch + local IP ports).
* :mod:`repro.network.topology` -- generic topology machinery.
* :mod:`repro.network.mesh` -- the 2D-mesh topology of HERMES (Fig. 1a).
* :mod:`repro.network.torus`, :mod:`repro.network.ring` -- additional
  topologies used by the extension instantiations.
* :mod:`repro.network.vc` -- virtual channels: the ``(port, vc)`` resource
  layer (:class:`VirtualChannel`) and the channel-granular topology view
  (:class:`VCTopology`) behind the escape-routing subsystem.
"""

from repro.network.port import (
    Direction,
    PortName,
    Port,
    trans,
    next_in,
    opposite,
)
from repro.network.flit import Flit, FlitKind
from repro.network.buffers import FlitBuffer, FlitBufferError, PortState
from repro.network.node import Node
from repro.network.topology import Topology
from repro.network.mesh import Mesh2D
from repro.network.torus import Torus2D
from repro.network.ring import Ring
from repro.network.vc import (
    VCTopology,
    VirtualChannel,
    channels_of,
    is_wrap_link,
    port_of,
    vc_of,
)

__all__ = [
    "Direction",
    "PortName",
    "Port",
    "trans",
    "next_in",
    "opposite",
    "Flit",
    "FlitKind",
    "FlitBuffer",
    "FlitBufferError",
    "PortState",
    "Node",
    "Topology",
    "Mesh2D",
    "Torus2D",
    "Ring",
    "VCTopology",
    "VirtualChannel",
    "channels_of",
    "is_wrap_link",
    "port_of",
    "vc_of",
]
