"""Virtual channels: multiplexing a physical port into per-VC lanes.

The paper's Theorem 1 decides deadlock freedom on a dependency graph whose
vertices are *ports*.  Every modern NoC multiplexes each physical port into
``k`` **virtual channels** (VCs): each VC has its own flit FIFO and its own
worm ownership, while the physical link bandwidth is shared.  The deadlock
condition must then be checked at ``(port, vc)`` granularity -- and the
classic repair for deadlock-prone adaptive routing (Duato's methodology)
*requires* VCs: an adaptive VC class that may route freely plus a restricted
*escape* VC class whose dependency subgraph is acyclic.

This module provides the resource layer of that story:

* :class:`VirtualChannel` -- the ``(port, vc)`` pair, immutable and hashable,
  usable everywhere a :class:`~repro.network.port.Port` is used as a state
  key, route element or dependency-graph vertex;
* :class:`VCTopology` -- a view of a base topology whose resource set is the
  channels instead of the ports: every cardinal port contributes ``num_vcs``
  channels, local (IP interface) ports contribute one.  Because
  :class:`~repro.core.state.NetworkState`, the routing enumeration and the
  route validators only use the topology through its port-set interface,
  instantiating them over a :class:`VCTopology` gives per-VC FIFOs, per-VC
  worm ownership and a ``(port, vc)``-granular dependency graph without
  touching those layers.

``num_vcs = 1`` is the degenerate case: one channel per port, and the whole
machinery coincides with the paper's single-VC model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.network.node import Node
from repro.network.port import Port, neighbour_node, parse_port
from repro.network.topology import Topology


@dataclass(frozen=True, order=True)
class VirtualChannel:
    """A virtual channel ``(port, vc)``: one lane of a physical port.

    Channels are immutable and hashable so they can serve as network-state
    keys, route elements and dependency-graph vertices -- exactly the three
    roles ports play in the single-VC model.
    """

    port: Port
    vc: int

    # -- port-interface delegation (so channels drop in where ports do) -----
    @property
    def x(self) -> int:
        return self.port.x

    @property
    def y(self) -> int:
        return self.port.y

    @property
    def name(self):
        return self.port.name

    @property
    def direction(self):
        return self.port.direction

    @property
    def node(self) -> Tuple[int, int]:
        return self.port.node

    @property
    def is_input(self) -> bool:
        return self.port.is_input

    @property
    def is_output(self) -> bool:
        return self.port.is_output

    @property
    def is_local(self) -> bool:
        return self.port.is_local

    @property
    def is_cardinal(self) -> bool:
        return self.port.is_cardinal

    def with_vc(self, vc: int) -> "VirtualChannel":
        """The channel with the given VC index on the same physical port."""
        return VirtualChannel(self.port, vc)

    def __str__(self) -> str:
        return f"{self.port}#{self.vc}"


#: A network resource: a plain port (single-VC model) or a virtual channel.
Resource = Union[Port, VirtualChannel]


def port_of(resource: Resource) -> Port:
    """The physical port of a resource (identity for plain ports)."""
    if isinstance(resource, VirtualChannel):
        return resource.port
    return resource


def vc_of(resource: Resource) -> int:
    """The VC index of a resource (0 for plain ports: the degenerate case)."""
    if isinstance(resource, VirtualChannel):
        return resource.vc
    return 0


def channels_of(port: Port, num_vcs: int) -> List[VirtualChannel]:
    """The channels a port contributes to a ``num_vcs``-channel network.

    Cardinal ports are multiplexed into ``num_vcs`` lanes; local ports are
    the IP-core interface, which has no virtual channels -- it contributes a
    single channel (index 0).
    """
    if num_vcs < 1:
        raise ValueError("a network has at least one virtual channel")
    if port.is_local:
        return [VirtualChannel(port, 0)]
    return [VirtualChannel(port, vc) for vc in range(num_vcs)]


def parse_channel(text: str) -> VirtualChannel:
    """Parse the string form ``<x,y,P,D>#v`` back into a channel."""
    stripped = text.strip()
    if "#" not in stripped:
        raise ValueError(f"not a channel literal: {text!r}")
    port_text, _, vc_text = stripped.rpartition("#")
    return VirtualChannel(parse_port(port_text), int(vc_text))


class VCTopology:
    """A channel-granular view of a base :class:`Topology`.

    Exposes the same structural interface as a topology -- ``ports`` (the
    channels), ``has_port``, ``link_target``, ``local_in_ports`` /
    ``local_out_ports``, ``node_at``, ``describe`` -- so that network states,
    routing enumeration and route validation work at VC granularity
    unchanged.  A physical link carries the VC index across: the out-channel
    ``(p, v)`` feeds the in-channel ``(q, v)`` of the port ``q`` that ``p``
    is wired to.
    """

    def __init__(self, base: Topology, num_vcs: int) -> None:
        if num_vcs < 1:
            raise ValueError("a network has at least one virtual channel")
        self.base = base
        self.num_vcs = int(num_vcs)
        self._channels: List[VirtualChannel] = []
        for port in base.ports:
            self._channels.extend(channels_of(port, self.num_vcs))
        self._channel_set = set(self._channels)
        self._links: Dict[VirtualChannel, VirtualChannel] = {}
        for out_port, in_port in base.links.items():
            for channel in channels_of(out_port, self.num_vcs):
                self._links[channel] = VirtualChannel(in_port, channel.vc)

    # -- the topology interface, at channel granularity ---------------------
    @property
    def ports(self) -> List[VirtualChannel]:
        """All channels of the network, in deterministic order."""
        return list(self._channels)

    @property
    def port_count(self) -> int:
        return len(self._channels)

    def has_port(self, resource: Resource) -> bool:
        return resource in self._channel_set

    def link_target(self, channel: VirtualChannel
                    ) -> Optional[VirtualChannel]:
        """The in-channel fed by an out-channel (same VC index)."""
        return self._links.get(channel)

    @property
    def links(self) -> Dict[VirtualChannel, VirtualChannel]:
        return dict(self._links)

    def local_in_ports(self) -> List[VirtualChannel]:
        """All injection channels (local in-ports, single channel each)."""
        return [VirtualChannel(port, 0) for port in self.base.local_in_ports()]

    def local_out_ports(self) -> List[VirtualChannel]:
        """All ejection channels (local out-ports, single channel each)."""
        return [VirtualChannel(port, 0)
                for port in self.base.local_out_ports()]

    # -- node-level structure (delegated to the base topology) --------------
    @property
    def nodes(self) -> List[Node]:
        return self.base.nodes

    @property
    def node_count(self) -> int:
        return self.base.node_count

    def node_at(self, x: int, y: int) -> Node:
        return self.base.node_at(x, y)

    def has_node(self, x: int, y: int) -> bool:
        return self.base.has_node(x, y)

    def validate(self) -> None:
        self.base.validate()

    def describe(self) -> Dict[str, int]:
        description = dict(self.base.describe())
        description.update({
            "virtual_channels": self.num_vcs,
            "channels": self.port_count,
        })
        return description

    def __str__(self) -> str:
        return f"VC[{self.num_vcs}]({self.base})"


def is_wrap_link(topology: Topology, out_port: Port) -> bool:
    """Does ``out_port``'s physical link wrap around the topology?

    A link is a wrap-around (dateline-crossing) link when the node it
    actually reaches differs from the node plain coordinate arithmetic says
    a port of that name points to -- e.g. the East out-port of the last
    column of a torus or ring.  Wrap links are where dateline escape routing
    switches VC class.
    """
    if out_port.is_local or not out_port.is_output:
        return False
    target = topology.link_target(out_port)
    if target is None:
        return False
    return target.node != neighbour_node(out_port)
