"""Seeded link/router fault injection over the regular topologies.

The paper proves deadlock freedom for *healthy* fabrics; a fault-tolerant
NoC reroutes around dead links and routers, and the interesting question is
whether the rerouted relation still satisfies the deadlock condition.  This
module provides the deterministic fault model behind the ``faults=k`` /
``seed=n`` terms of the scenario grammar:

* :class:`FaultSpec` -- a frozen description of the injected faults: dead
  undirected links (node pairs) and dead routers (node coordinates);
* :func:`sample_fault_spec` -- the seeded sampler: draws ``faults`` faults
  over a base topology, rejecting any draw that would disconnect the
  surviving node graph (or leave fewer than two routers), so every sampled
  fabric can still route between all surviving endpoints.  The RNG is
  seeded from ``zlib.crc32`` over the topology/seed description -- never
  from Python's salted ``hash()`` -- so the same spec yields the same
  faults in every process, interpreter and CI shard;
* :class:`FaultyMesh2D` / :class:`FaultyTorus2D` / :class:`FaultyRing` --
  the base topologies with the faults applied structurally: dead routers
  are not built, and a dead link removes the port *name* on both endpoint
  nodes (a cardinal port name corresponds one-to-one to the undirected
  link it serves, so name removal deletes both directions symmetrically
  and :meth:`~repro.network.topology.Topology.validate` still holds).

Faults are keyed by node pairs: on degenerate wrap topologies (a ring or
torus of extent 2, where two physical links join the same node pair) one
dead link kills the whole pair.  The connectivity check sees the same node
graph, so validated fault sets remain routable either way.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.errors import SpecificationError
from repro.network.mesh import Mesh2D
from repro.network.node import Node
from repro.network.port import OFFSETS, Port, PortName
from repro.network.ring import Ring
from repro.network.topology import Topology
from repro.network.torus import Torus2D

Coordinate = Tuple[int, int]
#: An undirected link, canonically ordered (smaller endpoint first).
LinkKey = Tuple[Coordinate, Coordinate]


def link_key(a: Coordinate, b: Coordinate) -> LinkKey:
    """The canonical (order-independent) key of an undirected link."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class FaultSpec:
    """A frozen set of injected faults: dead links and dead routers."""

    dead_links: Tuple[LinkKey, ...] = ()
    dead_routers: Tuple[Coordinate, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "dead_links",
                           tuple(sorted(link_key(a, b)
                                        for a, b in self.dead_links)))
        object.__setattr__(self, "dead_routers",
                           tuple(sorted(tuple(r)
                                        for r in self.dead_routers)))

    @property
    def count(self) -> int:
        return len(self.dead_links) + len(self.dead_routers)

    def is_dead_link(self, a: Coordinate, b: Coordinate) -> bool:
        return link_key(a, b) in self.dead_links

    def is_dead_router(self, node: Coordinate) -> bool:
        return node in self.dead_routers

    def describe(self) -> str:
        """A short deterministic tag, e.g. ``L(0,0)-(1,0)+R(2,2)``."""
        parts = [f"L({a[0]},{a[1]})-({b[0]},{b[1]})"
                 for a, b in self.dead_links]
        parts.extend(f"R({x},{y})" for x, y in self.dead_routers)
        return "+".join(parts) if parts else "none"


def node_adjacency(topology: Topology) -> Dict[Coordinate, Set[Coordinate]]:
    """The undirected node-adjacency graph of a topology's links."""
    adjacency: Dict[Coordinate, Set[Coordinate]] = {
        node.coordinates: set() for node in topology.nodes}
    for out_port, in_port in topology.links.items():
        adjacency[out_port.node].add(in_port.node)
        adjacency[in_port.node].add(out_port.node)
    return adjacency


def surviving_graph_connected(adjacency: Dict[Coordinate, Set[Coordinate]],
                              dead_links: Iterable[LinkKey],
                              dead_routers: Iterable[Coordinate]) -> bool:
    """Is the node graph minus the faults still one connected component?

    Also requires every surviving node to keep at least one live link
    (implied by connectivity once at least two nodes survive).
    """
    dead_link_set = set(dead_links)
    dead_router_set = set(dead_routers)
    alive = [node for node in adjacency if node not in dead_router_set]
    if len(alive) < 2:
        return False
    frontier = [alive[0]]
    seen = {alive[0]}
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency[node]:
            if neighbour in dead_router_set or neighbour in seen:
                continue
            if link_key(node, neighbour) in dead_link_set:
                continue
            seen.add(neighbour)
            frontier.append(neighbour)
    return len(seen) == len(alive)


def fault_rng(topology: Topology, faults: int, seed: int) -> random.Random:
    """The deterministic RNG of a fault draw (crc32-seeded, never hash())."""
    key = f"faults:{topology}:{faults}:{seed}"
    return random.Random(zlib.crc32(key.encode("utf-8")))


def sample_fault_spec(topology: Topology, faults: int, seed: int,
                      allow_routers: bool = True,
                      router_bias: float = 0.2) -> FaultSpec:
    """Draw ``faults`` seeded faults that keep the fabric connected.

    Faults are drawn one at a time: each draw picks a router kill with
    probability ``router_bias`` (when allowed) and a link kill otherwise,
    then tries the class's candidates in seeded random order until one
    keeps the surviving node graph connected; the classes fall back on
    each other when one is exhausted.  Raises
    :class:`~repro.core.errors.SpecificationError` when no placement of
    the requested fault count keeps the fabric connected (e.g. more link
    faults than a small ring can spare).
    """
    if faults < 0:
        raise SpecificationError("fault count must be non-negative")
    if faults == 0:
        return FaultSpec()
    adjacency = node_adjacency(topology)
    all_links = sorted({link_key(a, b)
                        for a, neighbours in adjacency.items()
                        for b in neighbours})
    all_routers = sorted(adjacency)
    rng = fault_rng(topology, faults, seed)
    dead_links: List[LinkKey] = []
    dead_routers: List[Coordinate] = []

    def try_links() -> bool:
        candidates = [link for link in all_links
                      if link not in dead_links
                      and not set(link) & set(dead_routers)]
        rng.shuffle(candidates)
        for link in candidates:
            if surviving_graph_connected(adjacency, dead_links + [link],
                                         dead_routers):
                dead_links.append(link)
                return True
        return False

    def try_routers() -> bool:
        candidates = [node for node in all_routers
                      if node not in dead_routers]
        rng.shuffle(candidates)
        for node in candidates:
            if surviving_graph_connected(adjacency, dead_links,
                                         dead_routers + [node]):
                dead_routers.append(node)
                return True
        return False

    for _ in range(faults):
        prefer_router = allow_routers and rng.random() < router_bias
        placed = (try_routers() or try_links()) if prefer_router \
            else (try_links() or (allow_routers and try_routers()))
        if not placed:
            raise SpecificationError(
                f"cannot place {faults} fault(s) on {topology} "
                f"(seed {seed}) without disconnecting the fabric")
    return FaultSpec(dead_links=tuple(dead_links),
                     dead_routers=tuple(dead_routers))


# ---------------------------------------------------------------------------
# Faulty topologies: the regular topologies with the faults applied
# ---------------------------------------------------------------------------

class FaultyMesh2D(Mesh2D):
    """A 2D mesh with a validated :class:`FaultSpec` applied."""

    def __init__(self, width: int, height: int, faults: FaultSpec) -> None:
        self.fault_spec = faults
        super().__init__(width, height)

    def build_nodes(self) -> Iterable[Node]:
        for node in super().build_nodes():
            if self.fault_spec.is_dead_router(node.coordinates):
                continue
            yield Node(node.x, node.y,
                       present_names=self._surviving_names(node))

    def _surviving_names(self, node: Node) -> Tuple[PortName, ...]:
        names: List[PortName] = []
        for name in node.present_names:
            if name is PortName.LOCAL:
                names.append(name)
                continue
            neighbour = self._neighbour_of(node.coordinates, name)
            if self.fault_spec.is_dead_router(neighbour):
                continue
            if self.fault_spec.is_dead_link(node.coordinates, neighbour):
                continue
            names.append(name)
        return tuple(names)

    def _neighbour_of(self, node: Coordinate, name: PortName) -> Coordinate:
        dx, dy = OFFSETS[name]
        return (node[0] + dx, node[1] + dy)

    def __str__(self) -> str:
        return f"{super().__str__()}~{self.fault_spec.describe()}"


class FaultyTorus2D(Torus2D):
    """A 2D torus with a validated :class:`FaultSpec` applied."""

    def __init__(self, width: int, height: int, faults: FaultSpec) -> None:
        self.fault_spec = faults
        super().__init__(width, height)

    def build_nodes(self) -> Iterable[Node]:
        for node in super().build_nodes():
            if self.fault_spec.is_dead_router(node.coordinates):
                continue
            names: List[PortName] = []
            for name in node.present_names:
                if name is PortName.LOCAL:
                    names.append(name)
                    continue
                dx, dy = OFFSETS[name]
                neighbour = self.wrap(node.x + dx, node.y + dy)
                if self.fault_spec.is_dead_router(neighbour):
                    continue
                if self.fault_spec.is_dead_link(node.coordinates, neighbour):
                    continue
                names.append(name)
            yield Node(node.x, node.y, present_names=tuple(names))

    def connect(self, out_port: Port) -> Optional[Port]:
        target = super().connect(out_port)
        if target is None:
            return None
        if self.fault_spec.is_dead_router(target.node):
            return None
        if self.fault_spec.is_dead_link(out_port.node, target.node):
            return None
        return target

    def __str__(self) -> str:
        return f"{super().__str__()}~{self.fault_spec.describe()}"


class FaultyRing(Ring):
    """A bidirectional ring with a validated :class:`FaultSpec` applied."""

    def __init__(self, size: int, faults: FaultSpec) -> None:
        self.fault_spec = faults
        super().__init__(size, bidirectional=True)

    def build_nodes(self) -> Iterable[Node]:
        for node in super().build_nodes():
            if self.fault_spec.is_dead_router(node.coordinates):
                continue
            names: List[PortName] = []
            for name in node.present_names:
                if name is PortName.LOCAL:
                    names.append(name)
                    continue
                step = 1 if name is PortName.EAST else -1
                neighbour = ((node.x + step) % self.size, 0)
                if self.fault_spec.is_dead_router(neighbour):
                    continue
                if self.fault_spec.is_dead_link(node.coordinates, neighbour):
                    continue
                names.append(name)
            yield Node(node.x, node.y, present_names=tuple(names))

    def connect(self, out_port: Port) -> Optional[Port]:
        target = super().connect(out_port)
        if target is None:
            return None
        if self.fault_spec.is_dead_router(target.node):
            return None
        if self.fault_spec.is_dead_link(out_port.node, target.node):
            return None
        return target

    def __str__(self) -> str:
        return f"{super().__str__()}~{self.fault_spec.describe()}"
