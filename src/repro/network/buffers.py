"""Flit buffers and per-port state.

The paper models the network state ``ST`` as "the list of all the ports of
the network.  Each port is associated to the list of its buffers"
(Section III-B).  Each port has an arbitrary (but fixed) number of 1-flit
buffers, and "a port can only accept flits of at most one packet"
(Section V.4) -- the classic wormhole constraint that a port is *owned* by
the worm currently traversing it.

:class:`FlitBuffer` is the FIFO of 1-flit slots attached to one port and
:class:`PortState` couples it with the ownership information needed by the
wormhole switching policy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterator, List, Optional

from repro.network.flit import Flit


class FlitBufferError(Exception):
    """Raised on illegal buffer operations (overflow, underflow, ownership)."""


class FlitBuffer:
    """A bounded FIFO of 1-flit buffers attached to a port.

    The capacity is the number of 1-flit buffers of the port (paper: "Each
    port has an arbitrary number of 1-flit buffers").
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("a port has at least one buffer")
        self._capacity = int(capacity)
        self._slots: Deque[Flit] = deque()

    # -- inspection ---------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def occupancy(self) -> int:
        return len(self._slots)

    @property
    def free_slots(self) -> int:
        return self._capacity - len(self._slots)

    @property
    def is_empty(self) -> bool:
        return not self._slots

    @property
    def is_full(self) -> bool:
        return len(self._slots) >= self._capacity

    def peek(self) -> Optional[Flit]:
        """The flit at the head of the FIFO (next to leave), or ``None``."""
        return self._slots[0] if self._slots else None

    def flits(self) -> List[Flit]:
        """Snapshot of the buffered flits, head of the FIFO first."""
        return list(self._slots)

    def __iter__(self) -> Iterator[Flit]:
        return iter(self._slots)

    def __len__(self) -> int:
        return len(self._slots)

    # -- mutation ------------------------------------------------------------
    def push(self, flit: Flit) -> None:
        """Append ``flit`` at the tail of the FIFO."""
        if self.is_full:
            raise FlitBufferError(f"buffer overflow (capacity {self._capacity})")
        self._slots.append(flit)

    def pop(self) -> Flit:
        """Remove and return the flit at the head of the FIFO."""
        if not self._slots:
            raise FlitBufferError("buffer underflow")
        return self._slots.popleft()

    def clear(self) -> None:
        self._slots.clear()

    def copy(self) -> "FlitBuffer":
        clone = FlitBuffer(self._capacity)
        clone._slots = deque(self._slots)
        return clone


@dataclass
class PortState:
    """State attached to one port: its buffers and its current owner.

    ``owner`` is the id of the travel whose worm currently occupies the port
    (``None`` when the port is free).  The wormhole constraint "a port can
    only accept flits of at most one packet" is enforced here.
    """

    buffer: FlitBuffer
    owner: Optional[int] = None
    reserved: bool = field(default=False)

    @classmethod
    def with_capacity(cls, capacity: int) -> "PortState":
        return cls(buffer=FlitBuffer(capacity))

    # -- availability --------------------------------------------------------
    def accepts(self, travel_id: int) -> bool:
        """Can this port accept one more flit of travel ``travel_id``?

        A port accepts a flit if it has at least one available buffer
        (paper Section V.4) and it is not owned by a different packet.
        """
        if self.buffer.is_full:
            return False
        return self.owner is None or self.owner == travel_id

    @property
    def is_available(self) -> bool:
        """Available in the deadlock-argument sense: free buffer & unowned."""
        return self.owner is None and not self.buffer.is_full

    @property
    def is_empty(self) -> bool:
        return self.buffer.is_empty and self.owner is None

    # -- mutation -------------------------------------------------------------
    def accept(self, flit: Flit) -> None:
        """Accept one flit, acquiring ownership of the port for its travel."""
        if not self.accepts(flit.travel_id):
            raise FlitBufferError(
                f"port owned by travel {self.owner} or full; "
                f"cannot accept flit of travel {flit.travel_id}"
            )
        self.buffer.push(flit)
        self.owner = flit.travel_id

    def release(self) -> Flit:
        """Remove the head flit; release ownership when the port drains."""
        flit = self.buffer.pop()
        if self.buffer.is_empty:
            self.owner = None
        return flit

    def copy(self) -> "PortState":
        return PortState(buffer=self.buffer.copy(), owner=self.owner,
                         reserved=self.reserved)

    def __str__(self) -> str:
        flits = " ".join(str(f) for f in self.buffer)
        owner = f" owner={self.owner}" if self.owner is not None else ""
        return f"[{flits}]{owner} ({self.buffer.occupancy}/{self.buffer.capacity})"
