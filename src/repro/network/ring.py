"""A unidirectional/bidirectional ring topology.

Rings are the degenerate 1-D case of the torus and the base structure of the
Spidergon topology (the GeNoC lineage's other published case study, used here
by :mod:`repro.spidergon`).  Nodes are laid out along the x-axis with y = 0;
the East port of the last node wraps to the West port of node 0.

A unidirectional ring (``bidirectional=False``) only has East out-ports and
West in-ports, which gives the textbook example of a cyclic channel
dependency graph unless a dateline discipline is applied.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.network.node import Node
from repro.network.port import Direction, Port, PortName
from repro.network.topology import Topology


class Ring(Topology):
    """A ring of ``size`` nodes."""

    def __init__(self, size: int, bidirectional: bool = True) -> None:
        if size < 2:
            raise ValueError("a ring has at least 2 nodes")
        self.size = int(size)
        self.bidirectional = bool(bidirectional)
        super().__init__()

    def build_nodes(self) -> Iterable[Node]:
        if self.bidirectional:
            names = (PortName.EAST, PortName.WEST, PortName.LOCAL)
        else:
            names = (PortName.EAST, PortName.WEST, PortName.LOCAL)
        for x in range(self.size):
            yield Node(x, 0, present_names=names)

    def connect(self, out_port: Port) -> Optional[Port]:
        if out_port.name is PortName.LOCAL:
            return None
        if out_port.name is PortName.EAST:
            nx = (out_port.x + 1) % self.size
            return Port(nx, 0, PortName.WEST, Direction.IN)
        if out_port.name is PortName.WEST:
            if not self.bidirectional:
                return None
            nx = (out_port.x - 1) % self.size
            return Port(nx, 0, PortName.EAST, Direction.IN)
        return None

    def clockwise_distance(self, a: int, b: int) -> int:
        """Hops from node ``a`` to node ``b`` going East (clockwise)."""
        return (b - a) % self.size

    def shortest_distance(self, a: int, b: int) -> int:
        cw = self.clockwise_distance(a, b)
        return min(cw, self.size - cw) if self.bidirectional else cw

    def __str__(self) -> str:
        kind = "bi" if self.bidirectional else "uni"
        return f"Ring({self.size},{kind})"
