"""The 2D-mesh topology of HERMES (paper Fig. 1a).

A ``width x height`` mesh has one node per coordinate pair ``(x, y)`` with
``0 <= x < width`` and ``0 <= y < height``.  Following the paper's coordinate
convention, ``x`` grows Eastwards and ``y`` grows Southwards, so node
``(0, 0)`` is the North-West corner.

Boundary nodes only have the cardinal ports for which a neighbour exists:
e.g. node ``(0, 0)`` of a 2x2 mesh has East, South and Local ports only.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.network.node import Node
from repro.network.port import (
    Direction,
    OFFSETS,
    Port,
    PortName,
    next_in,
)
from repro.network.topology import Topology


class Mesh2D(Topology):
    """A ``width x height`` 2D mesh of HERMES-style nodes."""

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be at least 1x1")
        self.width = int(width)
        self.height = int(height)
        super().__init__()

    # -- Topology primitives ---------------------------------------------------
    def build_nodes(self) -> Iterable[Node]:
        for y in range(self.height):
            for x in range(self.width):
                yield Node(x, y, present_names=self._present_names(x, y))

    def _present_names(self, x: int, y: int) -> Tuple[PortName, ...]:
        names: List[PortName] = []
        for name in (PortName.EAST, PortName.WEST, PortName.NORTH,
                     PortName.SOUTH):
            dx, dy = OFFSETS[name]
            if self.in_bounds(x + dx, y + dy):
                names.append(name)
        names.append(PortName.LOCAL)
        return tuple(names)

    def connect(self, out_port: Port) -> Optional[Port]:
        if out_port.name is PortName.LOCAL:
            return None
        target = next_in(out_port)
        if not self.in_bounds(target.x, target.y):
            return None
        return target

    # -- mesh-specific helpers ---------------------------------------------------
    def in_bounds(self, x: int, y: int) -> bool:
        return 0 <= x < self.width and 0 <= y < self.height

    def coordinates(self) -> List[Tuple[int, int]]:
        return [(x, y) for y in range(self.height) for x in range(self.width)]

    def manhattan_distance(self, a: Tuple[int, int], b: Tuple[int, int]) -> int:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def is_corner(self, x: int, y: int) -> bool:
        return (x in (0, self.width - 1)) and (y in (0, self.height - 1))

    def is_edge(self, x: int, y: int) -> bool:
        """On the boundary (includes corners)."""
        return (x in (0, self.width - 1)) or (y in (0, self.height - 1))

    def expected_port_count(self) -> int:
        """Closed-form port count, used as a structural cross-check.

        Each node contributes 2 local ports plus 2 ports per existing
        neighbour; the number of (directed) node adjacencies in a
        ``w x h`` mesh is ``2*(w*(h-1) + h*(w-1))``.
        """
        w, h = self.width, self.height
        adjacencies = 2 * (w * (h - 1) + h * (w - 1))
        return 2 * w * h + 2 * adjacencies

    def __str__(self) -> str:
        return f"Mesh2D({self.width}x{self.height})"

    def ascii_art(self) -> str:
        """A small ASCII rendering of the mesh (used by examples)."""
        rows = []
        for y in range(self.height):
            rows.append(" -- ".join(f"({x},{y})" for x in range(self.width)))
            if y < self.height - 1:
                rows.append("   |    " * self.width)
        return "\n".join(rows)
