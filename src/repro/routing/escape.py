"""Duato-style escape-channel adaptive routing over virtual channels.

The deadlock-prone adaptive routing functions of this library
(:class:`~repro.routing.adaptive.FullyAdaptiveMinimalRouting`, torus
dimension-order with its wrap links, shortest-path ring routing) are the
designs that virtual channels classically repair: multiplex every physical
port into an **adaptive** VC class that may route freely and a restricted
**escape** VC class whose dependency subgraph is acyclic.  A blocked packet
always has the escape class to fall back on, and packets on the escape
class march through an acyclic resource order -- Duato's methodology.

:class:`EscapeChannelRouting` is that scheme as a *routing relation over
channels*: the VC-selection function is part of the relation, so the
``(port, vc)``-granular dependency graph -- computed by the unchanged
:func:`~repro.core.dependency.routing_dependency_graph` enumeration over a
:class:`~repro.network.vc.VCTopology` -- captures exactly which channel may
wait on which.  The escape discipline is deliberately conservative ("once on
escape, stay on escape"): a packet that enters the escape class keeps
following the escape routing function, so waiting chains rooted in escape
channels stay inside the escape class and the freedom argument needs only

* **(V-1) escape coverage** -- every channel a packet can wait at offers at
  least one escape-class hop, and escape channels offer *only* escape-class
  hops, and
* **(V-2) escape acyclicity** -- the subgraph induced by the escape-class
  channels is acyclic

(checked by :func:`repro.core.theorems.check_deadlock_freedom_vc`, both
explicitly and through the incremental CDCL session).  With ``num_vcs = 1``
the two classes collapse onto the same single channel, (V-2) degenerates to
the paper's Theorem 1 condition on the full graph, and the verdict is the
single-VC one -- deadlock-prone for the adaptive baselines.

Two escape styles are provided:

* ``"xy"`` -- one escape VC running dimension-order routing; for meshes,
  where XY routing is acyclic on its own.
* ``"dateline"`` -- a *pair* of escape VCs for wrap-around topologies (torus,
  ring): a packet starts a dimension on escape VC 0 and is bumped to escape
  VC 1 when its hop crosses a wrap-around (dateline) link, which cuts the
  ring cycles at VC granularity.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.constituents import RoutingFunction
from repro.core.errors import RoutingError
from repro.network.port import Port, PortName
from repro.network.vc import (
    VCTopology,
    VirtualChannel,
    is_wrap_link,
    port_of,
    vc_of,
)
from repro.routing.base import OccurringPairsReachability

#: Which dimension a cardinal port name moves along.
_DIMENSION = {
    PortName.EAST: "x",
    PortName.WEST: "x",
    PortName.NORTH: "y",
    PortName.SOUTH: "y",
}

#: Route-selection policies for committing concrete routes (simulation).
ROUTE_POLICIES = ("escape", "adaptive", "spread")


class EscapeChannelRouting(RoutingFunction):
    """An adaptive VC class plus a restricted escape VC class, as one relation.

    Parameters
    ----------
    topology:
        The :class:`~repro.network.vc.VCTopology` the relation is defined
        over (``topology.num_vcs`` total VCs per cardinal port).
    escape_routing:
        A *deterministic* routing function over the base topology; it must
        produce a next hop from any in-port (XY, torus dimension-order,
        shortest-path ring all do).
    adaptive_routing:
        The unrestricted relation carried by the adaptive VC class, or
        ``None`` for a pure escape network (e.g. dateline dimension-order on
        a torus).
    escape_vc_count:
        Number of VCs reserved for the escape class: 1 for ``"xy"`` style,
        2 for ``"dateline"`` style.  When it equals ``num_vcs`` and an
        adaptive relation is present, the classes *share* the channels (the
        degenerate single-VC behaviour) and no freedom guarantee follows.
    route_policy:
        How :meth:`route_configuration` commits concrete routes: ``"escape"``
        (default -- committed routes live on the provably acyclic escape
        network), ``"adaptive"`` (always take an adaptive hop while one
        exists) or ``"spread"`` (alternate per travel id).  Committed
        adaptive routes forfeit the Duato guarantee: the guarantee is for an
        adaptive *router* that may still divert a blocked packet to the
        escape class, which a pre-committed route cannot do.
    """

    def __init__(self, topology: VCTopology,
                 escape_routing: RoutingFunction,
                 adaptive_routing: Optional[RoutingFunction] = None,
                 escape_vc_count: int = 1,
                 route_policy: str = "escape",
                 style: Optional[str] = None) -> None:
        if escape_vc_count < 1:
            raise ValueError("the escape class needs at least one VC")
        if topology.num_vcs < escape_vc_count:
            raise ValueError(
                f"{escape_vc_count} escape VCs do not fit into "
                f"{topology.num_vcs} total VCs")
        if route_policy not in ROUTE_POLICIES:
            raise ValueError(f"route_policy must be one of {ROUTE_POLICIES}")
        self._vct = topology
        self._escape = escape_routing
        self._adaptive = adaptive_routing
        self._escape_vc_count = int(escape_vc_count)
        self.route_policy = route_policy
        self._style = style or ("dateline" if escape_vc_count > 1 else "xy")
        self._reachability = OccurringPairsReachability(self)

    # -- class structure ------------------------------------------------------
    @property
    def topology(self) -> VCTopology:
        return self._vct

    @property
    def num_vcs(self) -> int:
        return self._vct.num_vcs

    @property
    def escape_vcs(self) -> Tuple[int, ...]:
        """The VC indices of the escape class."""
        return tuple(range(self._escape_vc_count))

    @property
    def adaptive_vcs(self) -> Tuple[int, ...]:
        """The VC indices carrying the adaptive relation.

        Empty for a pure escape network; equal to :attr:`escape_vcs` in the
        degenerate shared case (``num_vcs == escape_vc_count`` with an
        adaptive relation present).
        """
        if self._adaptive is None:
            return ()
        if self.num_vcs > self._escape_vc_count:
            return tuple(range(self._escape_vc_count, self.num_vcs))
        return self.escape_vcs

    @property
    def classes_separated(self) -> bool:
        """Do the adaptive and escape classes use disjoint VCs?

        Only then does the escape discipline ("once on escape, stay on
        escape") hold and the Duato-style freedom argument apply.
        """
        return not set(self.adaptive_vcs) & set(self.escape_vcs)

    @property
    def escape_routing(self) -> RoutingFunction:
        return self._escape

    @property
    def adaptive_routing(self) -> Optional[RoutingFunction]:
        return self._adaptive

    def is_escape_resource(self, resource) -> bool:
        """Is the channel in the escape class (local channels count)?"""
        return vc_of(resource) in self.escape_vcs

    def name(self) -> str:
        base = self._adaptive.name() if self._adaptive is not None else "pure"
        return (f"Resc-{self._style}[{base},{self.num_vcs}vc,"
                f"{self._escape_vc_count}esc]")

    @property
    def is_deterministic(self) -> bool:
        return self._adaptive is None

    # -- the routing relation over channels -----------------------------------
    def next_hops(self, current: VirtualChannel,
                  destination: VirtualChannel) -> List[VirtualChannel]:
        self._check_destination(destination)
        if current == destination:
            return []
        port = port_of(current)
        if port.is_output:
            if port.is_local:
                raise RoutingError(
                    f"cannot route from local out-channel {current}: it is a "
                    f"network sink")
            target = self._vct.link_target(current)
            if target is None:
                raise RoutingError(f"out-channel {current} has no link")
            return [target]
        if port.node == port_of(destination).node:
            return [destination]
        return self._route_from_in_channel(current, destination)

    def _route_from_in_channel(self, current: VirtualChannel,
                               destination: VirtualChannel
                               ) -> List[VirtualChannel]:
        port = port_of(current)
        base_dest = port_of(destination)
        hops: List[VirtualChannel] = []
        adaptive_allowed = (self._adaptive is not None
                            and (port.is_local
                                 or vc_of(current) in self.adaptive_vcs))
        if adaptive_allowed:
            for out in self._adaptive.next_hops(port, base_dest):
                for vc in self.adaptive_vcs:
                    hops.append(VirtualChannel(out, vc))
        escape_out = self._escape.next_hop(port, base_dest)
        escape_hop = VirtualChannel(escape_out,
                                    self._escape_vc_for(current, escape_out))
        if escape_hop not in hops:
            hops.append(escape_hop)
        return hops

    def _escape_vc_for(self, current: VirtualChannel,
                       escape_out: Port) -> int:
        """The escape-class VC selected for the hop onto ``escape_out``.

        Single escape VC: always 0.  Dateline pair: a hop whose physical
        link wraps around bumps the packet to escape VC 1; continuing in the
        same dimension keeps the current escape VC; entering a dimension
        (from the local port or after a dimension turn) resets to VC 0.
        """
        if self._escape_vc_count == 1:
            return 0
        if is_wrap_link(self._vct.base, escape_out):
            return 1
        port = port_of(current)
        if (not port.is_local
                and vc_of(current) in self.escape_vcs
                and _DIMENSION.get(port.name) == _DIMENSION.get(
                    escape_out.name)):
            return vc_of(current)
        return 0

    # -- reachability ----------------------------------------------------------
    def reachable(self, source: VirtualChannel,
                  destination: VirtualChannel) -> bool:
        if not self._is_valid_destination(destination):
            return False
        if not self._vct.has_port(source):
            return False
        if source == destination:
            return True
        source_port = port_of(source)
        if source_port.is_local and source_port.is_output:
            return False
        return self._reachability(source, destination)

    def _is_valid_destination(self, destination) -> bool:
        return (isinstance(destination, VirtualChannel)
                and port_of(destination).is_local
                and port_of(destination).is_output
                and self._vct.has_port(destination))

    def _check_destination(self, destination) -> None:
        if not self._is_valid_destination(destination):
            raise RoutingError(
                f"{destination} is not a valid destination (destinations are "
                f"local out-channels of the VC topology)")

    # -- committing concrete routes (simulation) -------------------------------
    def compute_route(self, source: VirtualChannel,
                      destination: VirtualChannel,
                      max_hops: Optional[int] = None,
                      preference: Optional[str] = None) -> List[VirtualChannel]:
        """A concrete channel route, selected by ``preference``.

        ``"escape"`` keeps the packet on the escape class from the first
        hop; ``"adaptive"`` takes the first adaptive hop while one exists
        (falling back to escape when the adaptive class is absent).
        """
        preference = preference or self.route_policy
        if preference == "spread":
            preference = "adaptive"
        if max_hops is None:
            max_hops = self.MAX_ROUTE_FACTOR * max(self._vct.port_count, 4)
        route = [source]
        current = source
        while current != destination:
            if len(route) > max_hops:
                raise RoutingError(
                    f"route from {source} to {destination} exceeds "
                    f"{max_hops} hops: routing does not terminate")
            hops = self.next_hops(current, destination)
            if not hops:
                raise RoutingError(
                    f"no next hop from {current} towards {destination}")
            current = self._select_hop(hops, preference)
            if not self._vct.has_port(current):
                raise RoutingError(
                    f"routing produced non-existent channel {current}")
            route.append(current)
        return route

    def _select_hop(self, hops: Sequence[VirtualChannel],
                    preference: str) -> VirtualChannel:
        if len(hops) == 1:
            return hops[0]
        escape_hops = [hop for hop in hops if self.is_escape_resource(hop)]
        if preference == "escape" and escape_hops:
            return escape_hops[0]
        adaptive_hops = [hop for hop in hops
                         if not self.is_escape_resource(hop)]
        if preference == "adaptive" and adaptive_hops:
            return adaptive_hops[0]
        return hops[0]

    def route_configuration(self, config):
        """``R : Σ -> Σ`` with the relation's route policy applied.

        ``"spread"`` alternates the per-travel preference by travel id so a
        simulated workload exercises both VC classes.
        """
        from repro.core.configuration import Configuration, TravelProgress

        routed = []
        for travel in config.travels:
            if travel.has_route:
                routed.append(travel)
                continue
            if not self.reachable(travel.source, travel.destination):
                raise RoutingError(
                    f"destination {travel.destination} is not reachable "
                    f"from {travel.source}")
            if self.route_policy == "spread":
                preference = ("adaptive" if travel.travel_id % 2 else "escape")
            else:
                preference = self.route_policy
            route = self.compute_route(travel.source, travel.destination,
                                       preference=preference)
            routed.append(travel.with_route(route))
        progress = dict(config.progress)
        for travel in routed:
            if travel.travel_id not in progress:
                progress[travel.travel_id] = TravelProgress.initial(travel)
        return Configuration(travels=routed, state=config.state,
                             arrived=config.arrived, progress=progress)


# ---------------------------------------------------------------------------
# Construction helpers: the shipped escape schemes
# ---------------------------------------------------------------------------

def mesh_escape_routing(mesh, num_vcs: int = 2,
                        route_policy: str = "escape") -> EscapeChannelRouting:
    """Fully-adaptive minimal routing + one XY escape VC on a 2D mesh.

    ``num_vcs = 1`` is the degenerate single-channel case: adaptive and
    escape share the only VC and the design stays deadlock-prone.
    """
    from repro.routing.adaptive import FullyAdaptiveMinimalRouting
    from repro.routing.xy import XYRouting

    topology = VCTopology(mesh, num_vcs)
    return EscapeChannelRouting(
        topology,
        escape_routing=XYRouting(mesh),
        adaptive_routing=FullyAdaptiveMinimalRouting(mesh),
        escape_vc_count=1,
        route_policy=route_policy,
        style="xy")


def torus_escape_routing(torus, num_vcs: int = 2,
                         route_policy: str = "escape") -> EscapeChannelRouting:
    """Dateline escape pair (+ adaptive class when ``num_vcs > 2``) on a torus.

    * ``num_vcs = 1``: plain torus dimension-order on a single channel --
      the wrap-link cycles make it deadlock-prone;
    * ``num_vcs = 2``: the pure dateline escape network (deadlock-free);
    * ``num_vcs > 2``: dateline escape pair plus a fully-adaptive minimal
      class on the remaining VCs.
    """
    from repro.routing.torus import (
        TorusAdaptiveMinimalRouting,
        TorusXYRouting,
    )

    topology = VCTopology(torus, num_vcs)
    if num_vcs == 1:
        return EscapeChannelRouting(
            topology,
            escape_routing=TorusXYRouting(torus),
            adaptive_routing=None,
            escape_vc_count=1,
            route_policy=route_policy,
            style="dateline")
    adaptive = (TorusAdaptiveMinimalRouting(torus) if num_vcs > 2 else None)
    return EscapeChannelRouting(
        topology,
        escape_routing=TorusXYRouting(torus),
        adaptive_routing=adaptive,
        escape_vc_count=2,
        route_policy=route_policy,
        style="dateline")


def ring_escape_routing(ring, num_vcs: int = 2,
                        route_policy: str = "escape",
                        base_routing: Optional[RoutingFunction] = None
                        ) -> EscapeChannelRouting:
    """Dateline escape pair on a ring.

    ``base_routing`` is the (deterministic, wrap-using) ring routing the
    dateline repairs -- shortest-path by default, or e.g.
    :class:`~repro.routing.ring.ClockwiseRingRouting` to repair the
    paper's clockwise counterexample itself.  ``num_vcs = 1`` is the plain
    base routing on one channel (deadlock-prone through the wrap link);
    ``num_vcs >= 2`` adds the dateline VC switch that cuts the ring cycle.
    """
    from repro.routing.ring import ShortestPathRingRouting

    if base_routing is None:
        base_routing = ShortestPathRingRouting(ring)
    topology = VCTopology(ring, num_vcs)
    return EscapeChannelRouting(
        topology,
        escape_routing=base_routing,
        adaptive_routing=None,
        escape_vc_count=1 if num_vcs == 1 else 2,
        route_policy=route_policy,
        style="dateline")
