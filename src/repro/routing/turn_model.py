"""Turn-model partially adaptive routing functions.

The paper's method "currently applies to deterministic routing algorithms"
(Section IX) and names adaptive routing as future work.  These three
classical turn-model algorithms (Glass & Ni) are included as that extension:
they are *partially adaptive* -- several minimal next hops may be allowed --
yet their dependency graphs remain acyclic because one class of turns is
forbidden:

* **west-first** -- a packet travels west only at the very beginning of its
  route; once it has moved in any other direction it never turns west.
  Port-level: whenever the destination lies to the west, the only allowed
  hop is the West out-port; otherwise every minimal direction is allowed.
* **north-last** -- a packet turns north only as the last leg of its route:
  the North out-port is allowed only when north is the only remaining
  minimal direction.
* **negative-first** -- a packet first travels in the negative directions
  (West/North, i.e. decreasing coordinates) and only then in the positive
  ones.

Because a turn-model function is only meaningful on ports a packet can
actually occupy, the ``s R d`` reachability predicate is the set of
(port, destination) pairs occurring on routes from local in-ports
(:func:`repro.routing.base.occurring_pairs`).
"""

from __future__ import annotations

from typing import List

from repro.network.mesh import Mesh2D
from repro.network.port import Port, PortName
from repro.routing.base import MeshRoutingFunction, OccurringPairsReachability


class _TurnModelRouting(MeshRoutingFunction):
    """Common scaffolding of the three turn models."""

    def __init__(self, mesh: Mesh2D) -> None:
        super().__init__(mesh)
        self._reachability = OccurringPairsReachability(self)

    @property
    def is_deterministic(self) -> bool:
        return False

    def reachable(self, source: Port, destination: Port) -> bool:
        if not self._is_valid_destination(destination):
            return False
        if not self.mesh.has_port(source):
            return False
        return self._reachability(source, destination)

    def _route_from_in_port(self, current: Port,
                            destination: Port) -> List[Port]:
        names = self._allowed_directions(current, destination)
        return [self._out_port(current, name) for name in names]

    def _allowed_directions(self, current: Port,
                            destination: Port) -> List[PortName]:
        raise NotImplementedError


class WestFirstRouting(_TurnModelRouting):
    """West-first turn-model routing."""

    def name(self) -> str:
        return "Rwest-first"

    def _allowed_directions(self, current: Port,
                            destination: Port) -> List[PortName]:
        minimal = self._minimal_directions(current, destination)
        if PortName.WEST in minimal:
            return [PortName.WEST]
        return minimal


class NorthLastRouting(_TurnModelRouting):
    """North-last turn-model routing."""

    def name(self) -> str:
        return "Rnorth-last"

    def _allowed_directions(self, current: Port,
                            destination: Port) -> List[PortName]:
        minimal = self._minimal_directions(current, destination)
        without_north = [name for name in minimal if name is not PortName.NORTH]
        if without_north:
            return without_north
        return minimal


class NegativeFirstRouting(_TurnModelRouting):
    """Negative-first turn-model routing (negative = West and North)."""

    def name(self) -> str:
        return "Rnegative-first"

    def _allowed_directions(self, current: Port,
                            destination: Port) -> List[PortName]:
        minimal = self._minimal_directions(current, destination)
        negative = [name for name in minimal
                    if name in (PortName.WEST, PortName.NORTH)]
        if negative:
            return negative
        return minimal
