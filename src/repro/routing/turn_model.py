"""Turn-model partially adaptive routing functions.

The paper's method "currently applies to deterministic routing algorithms"
(Section IX) and names adaptive routing as future work.  These three
classical turn-model algorithms (Glass & Ni) are included as that extension:
they are *partially adaptive* -- several minimal next hops may be allowed --
yet their dependency graphs remain acyclic because one class of turns is
forbidden:

* **west-first** -- a packet travels west only at the very beginning of its
  route; once it has moved in any other direction it never turns west.
  Port-level: whenever the destination lies to the west, the only allowed
  hop is the West out-port; otherwise every minimal direction is allowed.
* **north-last** -- a packet turns north only as the last leg of its route:
  the North out-port is allowed only when north is the only remaining
  minimal direction.
* **negative-first** -- a packet first travels in the negative directions
  (West/North, i.e. decreasing coordinates) and only then in the positive
  ones.
* **odd-even** (Chiu) -- instead of banning a turn class globally, the bans
  alternate by column parity: eastbound packets may turn vertical only in
  odd columns (no EN/ES turn in an even column), westbound packets only in
  even columns (no NW/SW turn in an odd column).  Any dependency cycle
  would need both an east-to-vertical and a vertical-to-west turn in its
  rightmost column, which the parity split makes impossible, so the graph
  stays acyclic while no single turn is forbidden everywhere.

Because a turn-model function is only meaningful on ports a packet can
actually occupy, the ``s R d`` reachability predicate is the set of
(port, destination) pairs occurring on routes from local in-ports
(:func:`repro.routing.base.occurring_pairs`).
"""

from __future__ import annotations

from typing import List

from repro.network.mesh import Mesh2D
from repro.network.port import Port, PortName
from repro.routing.base import MeshRoutingFunction, OccurringPairsReachability


class _TurnModelRouting(MeshRoutingFunction):
    """Common scaffolding of the three turn models."""

    def __init__(self, mesh: Mesh2D) -> None:
        super().__init__(mesh)
        self._reachability = OccurringPairsReachability(self)

    @property
    def is_deterministic(self) -> bool:
        return False

    def reachable(self, source: Port, destination: Port) -> bool:
        if not self._is_valid_destination(destination):
            return False
        if not self.mesh.has_port(source):
            return False
        return self._reachability(source, destination)

    def _route_from_in_port(self, current: Port,
                            destination: Port) -> List[Port]:
        names = self._allowed_directions(current, destination)
        return [self._out_port(current, name) for name in names]

    def _allowed_directions(self, current: Port,
                            destination: Port) -> List[PortName]:
        raise NotImplementedError


class WestFirstRouting(_TurnModelRouting):
    """West-first turn-model routing."""

    def name(self) -> str:
        return "Rwest-first"

    def _allowed_directions(self, current: Port,
                            destination: Port) -> List[PortName]:
        minimal = self._minimal_directions(current, destination)
        if PortName.WEST in minimal:
            return [PortName.WEST]
        return minimal


class NorthLastRouting(_TurnModelRouting):
    """North-last turn-model routing."""

    def name(self) -> str:
        return "Rnorth-last"

    def _allowed_directions(self, current: Port,
                            destination: Port) -> List[PortName]:
        minimal = self._minimal_directions(current, destination)
        without_north = [name for name in minimal if name is not PortName.NORTH]
        if without_north:
            return without_north
        return minimal


class NegativeFirstRouting(_TurnModelRouting):
    """Negative-first turn-model routing (negative = West and North)."""

    def name(self) -> str:
        return "Rnegative-first"

    def _allowed_directions(self, current: Port,
                            destination: Port) -> List[PortName]:
        minimal = self._minimal_directions(current, destination)
        negative = [name for name in minimal
                    if name in (PortName.WEST, PortName.NORTH)]
        if negative:
            return negative
        return minimal


def odd_even_directions(current: Port, destination: Port) -> List[PortName]:
    """The odd-even allowed-direction set at ``current`` (Chiu's ROUTE).

    Eastbound (``dx > 0``): vertical movement is allowed only in odd
    columns -- or at the source node itself -- and the final East hop into
    an even destination column is deferred until the vertical movement is
    complete (``dx == 1`` with ``dy != 0`` may not take East when the
    destination column is even), since turning vertical there would be a
    forbidden EN/ES turn.  Westbound (``dx < 0``): West is always allowed
    and vertical movement only in even columns (NW/SW turns are forbidden
    in odd columns).  The port level sees the arrival direction through
    the in-port name; "at the source" is the local in-port.
    """
    dx = destination.x - current.x
    dy = destination.y - current.y
    vertical = PortName.NORTH if dy < 0 else PortName.SOUTH
    if dx == 0:
        return [vertical]
    allowed: List[PortName] = []
    if dx > 0:
        at_source = current.name is PortName.LOCAL
        if dy != 0 and (current.x % 2 == 1 or at_source):
            allowed.append(vertical)
        if dy == 0 or destination.x % 2 == 1 or dx != 1:
            allowed.append(PortName.EAST)
    else:
        allowed.append(PortName.WEST)
        if dy != 0 and current.x % 2 == 0:
            allowed.append(vertical)
    return allowed


class OddEvenRouting(_TurnModelRouting):
    """Odd-even turn-model routing (see :func:`odd_even_directions`)."""

    def name(self) -> str:
        return "Rodd-even"

    def _allowed_directions(self, current: Port,
                            destination: Port) -> List[PortName]:
        return odd_even_directions(current, destination)
