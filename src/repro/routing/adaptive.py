"""Unrestricted minimal adaptive routing: the deadlock-prone baseline.

Every minimal direction is allowed at every hop.  On any mesh of at least
2x2 this creates cycles in the port dependency graph (e.g. the four "turns"
around a single mesh square), so the routing function fails obligation
(C-3); the Theorem 1 benchmarks use it to exercise

* the cycle finders (a cycle is reported),
* the sufficiency witness construction (the cycle is turned into a concrete
  deadlock configuration), and
* the state-space explorer (a deadlock is reachable for suitable workloads).
"""

from __future__ import annotations

from typing import List, Optional

from repro.network.mesh import Mesh2D
from repro.network.port import Port
from repro.routing.base import MeshRoutingFunction, OccurringPairsReachability


class FullyAdaptiveMinimalRouting(MeshRoutingFunction):
    """All minimal directions allowed at every hop (no turn restriction)."""

    def __init__(self, mesh: Mesh2D) -> None:
        super().__init__(mesh)
        self._reachability = OccurringPairsReachability(self)

    def name(self) -> str:
        return "Radaptive"

    @property
    def is_deterministic(self) -> bool:
        return False

    def reachable(self, source: Port, destination: Port) -> bool:
        if not super().reachable(source, destination):
            return False
        return self._reachability(source, destination)

    def _route_from_in_port(self, current: Port,
                            destination: Port) -> List[Port]:
        names = self._minimal_directions(current, destination)
        return [self._out_port(current, name) for name in names]


class ZigZagRouting(MeshRoutingFunction):
    """A *deterministic* deadlock-prone routing function.

    It alternates the dimension order per source-column parity: packets
    starting in even columns route XY, packets starting in odd columns route
    YX.  Because the choice depends on the destination's column parity at
    every port (the function only sees the current port and the
    destination), XY and YX dependencies mix and the dependency graph has
    cycles on meshes of at least 3x3.  Being deterministic, it is also
    eligible for the sufficiency construction of Theorem 1, which needs
    ``R`` to be deterministic.
    """

    def __init__(self, mesh: Mesh2D) -> None:
        super().__init__(mesh)
        self._reachability = OccurringPairsReachability(self)

    def name(self) -> str:
        return "Rzigzag"

    def reachable(self, source: Port, destination: Port) -> bool:
        if not super().reachable(source, destination):
            return False
        return self._reachability(source, destination)

    def _route_from_in_port(self, current: Port,
                            destination: Port) -> List[Port]:
        from repro.network.port import PortName

        if destination.x % 2 == 0:
            order = ("x", "y")
        else:
            order = ("y", "x")
        for axis in order:
            if axis == "x":
                if destination.x < current.x:
                    return [self._out_port(current, PortName.WEST)]
                if destination.x > current.x:
                    return [self._out_port(current, PortName.EAST)]
            else:
                if destination.y < current.y:
                    return [self._out_port(current, PortName.NORTH)]
                if destination.y > current.y:
                    return [self._out_port(current, PortName.SOUTH)]
        return [self._out_port(current, PortName.LOCAL)]
