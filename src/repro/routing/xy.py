"""The paper's XY routing function ``Rxy`` (Section V.3).

Packets are routed first along the x-axis to the correct column, then along
the y-axis to the correct row, and finally delivered through the local
out-port.  At the port level:

* ``Rxy(p, d) = next_in(p)`` when ``p`` is an out-port;
* ``trans(p, W_out)`` when ``x(d) < x(p)``;
* ``trans(p, E_out)`` when ``x(d) > x(p)``;
* ``trans(p, N_out)`` when ``y(d) < y(p)``;
* ``trans(p, S_out)`` when ``y(d) > y(p)``;
* ``trans(p, L_out)`` otherwise (delivery).
"""

from __future__ import annotations

from repro.network.mesh import Mesh2D
from repro.routing.dimension_order import DimensionOrderRouting


class XYRouting(DimensionOrderRouting):
    """``Rxy``: deterministic, minimal XY routing over a 2D mesh."""

    def __init__(self, mesh: Mesh2D) -> None:
        super().__init__(mesh, order="xy")

    def name(self) -> str:
        return "Rxy"
