"""Dimension-order routing on a 2D torus.

Plain XY routing lifted to the torus: route along the x-ring first (taking
the shorter arc, ties going East), then along the y-ring (ties going South).
Because the wrap-around links are used, the port dependency graph contains
the textbook ring cycles in every row and column -- this is the
deadlock-prone baseline that dateline escape channels
(:mod:`repro.routing.escape`) repair at VC granularity.
"""

from __future__ import annotations

from typing import List

from repro.core.errors import RoutingError
from repro.network.port import Direction, Port, PortName, trans
from repro.network.torus import Torus2D
from repro.routing.base import OccurringPairsReachability
from repro.core.constituents import RoutingFunction


class TorusXYRouting(RoutingFunction):
    """Deterministic minimal dimension-order (XY) routing on a torus."""

    def __init__(self, torus: Torus2D) -> None:
        self._torus = torus
        self._reachability = OccurringPairsReachability(self)

    @property
    def topology(self) -> Torus2D:
        return self._torus

    @property
    def torus(self) -> Torus2D:
        return self._torus

    def name(self) -> str:
        return "Rxy-torus"

    # -- the routing relation ------------------------------------------------
    def next_hops(self, current: Port, destination: Port) -> List[Port]:
        self._check_destination(destination)
        if current == destination:
            return []
        if current.direction is Direction.OUT:
            if current.name is PortName.LOCAL:
                raise RoutingError(
                    f"cannot route from local out-port {current}: it is a "
                    f"network sink")
            target = self._torus.link_target(current)
            assert target is not None  # every cardinal torus port is linked
            return [target]
        if current.node == destination.node:
            return [trans(current, PortName.LOCAL, Direction.OUT)]
        return [trans(current, self.direction_towards(current, destination),
                      Direction.OUT)]

    def direction_towards(self, current: Port, destination: Port) -> PortName:
        """The dimension-order direction choice (shorter arc, ties E/S)."""
        if destination.x != current.x:
            east = (destination.x - current.x) % self._torus.width
            west = (current.x - destination.x) % self._torus.width
            return PortName.EAST if east <= west else PortName.WEST
        south = (destination.y - current.y) % self._torus.height
        north = (current.y - destination.y) % self._torus.height
        return PortName.SOUTH if south <= north else PortName.NORTH

    # -- reachability --------------------------------------------------------
    def reachable(self, source: Port, destination: Port) -> bool:
        if not self._is_valid_destination(destination):
            return False
        if not self._torus.has_port(source):
            return False
        if source == destination:
            return True
        if source.name is PortName.LOCAL and source.direction is Direction.OUT:
            return False
        return self._reachability(source, destination)

    def _is_valid_destination(self, destination: Port) -> bool:
        return (destination.name is PortName.LOCAL
                and destination.direction is Direction.OUT
                and self._torus.has_port(destination))

    def _check_destination(self, destination: Port) -> None:
        if not self._is_valid_destination(destination):
            raise RoutingError(
                f"{destination} is not a valid destination (destinations are "
                f"local out-ports of the torus)")


class TorusAdaptiveMinimalRouting(TorusXYRouting):
    """All minimal directions allowed at every hop of a torus.

    The torus analogue of
    :class:`~repro.routing.adaptive.FullyAdaptiveMinimalRouting`: at every
    in-port, any direction along a shorter (or tied) arc of an unfinished
    dimension is allowed.  Deadlock-prone on its own; used as the adaptive
    VC class of the torus escape-channel instantiations.
    """

    def name(self) -> str:
        return "Radaptive-torus"

    @property
    def is_deterministic(self) -> bool:
        return False

    def next_hops(self, current: Port, destination: Port) -> List[Port]:
        self._check_destination(destination)
        if current == destination:
            return []
        if current.direction is Direction.OUT:
            return super().next_hops(current, destination)
        if current.node == destination.node:
            return [trans(current, PortName.LOCAL, Direction.OUT)]
        return [trans(current, name, Direction.OUT)
                for name in self.minimal_directions(current, destination)]

    def minimal_directions(self, current: Port,
                           destination: Port) -> List[PortName]:
        """Directions along a shortest (or tied-shortest) arc per dimension."""
        names: List[PortName] = []
        if destination.x != current.x:
            east = (destination.x - current.x) % self._torus.width
            west = (current.x - destination.x) % self._torus.width
            if east <= west:
                names.append(PortName.EAST)
            if west <= east:
                names.append(PortName.WEST)
        if destination.y != current.y:
            south = (destination.y - current.y) % self._torus.height
            north = (current.y - destination.y) % self._torus.height
            if south <= north:
                names.append(PortName.SOUTH)
            if north <= south:
                names.append(PortName.NORTH)
        return names
