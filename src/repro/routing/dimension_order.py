"""Dimension-order routing, parameterised by the dimension order.

``DimensionOrderRouting(mesh, order="xy")`` is the paper's XY routing;
``order="yx"`` routes along the y-axis first.  Both are deterministic and
minimal, and both have acyclic port dependency graphs (the flows argument of
the paper works symmetrically for YX with the roles of the axes swapped).

The ``s R d`` reachability predicate (the paper calls it "quite technical",
Section III-B) is given in closed form: a pair (port, destination) is
reachable iff a packet destined to ``d`` can actually find itself at that
port during a dimension-order route.  For XY routing, for example, a packet
can only occupy a West in-port (i.e. be travelling East) if its destination
column is not to the West, and it can only occupy a vertical port if it has
already reached its destination column.  The property-based tests confirm
that this closed form coincides with the occurring-pairs semantics computed
by :func:`repro.routing.base.occurring_pairs`.
"""

from __future__ import annotations

from typing import List

from repro.core.errors import RoutingError
from repro.network.mesh import Mesh2D
from repro.network.port import Direction, Port, PortName
from repro.routing.base import MeshRoutingFunction


class DimensionOrderRouting(MeshRoutingFunction):
    """Deterministic dimension-order routing over a 2D mesh."""

    def __init__(self, mesh: Mesh2D, order: str = "xy") -> None:
        super().__init__(mesh)
        if order not in ("xy", "yx"):
            raise ValueError("order must be 'xy' or 'yx'")
        self.order = order

    def name(self) -> str:
        return f"R{self.order}"

    # -- the s R d predicate -----------------------------------------------------
    def reachable(self, source: Port, destination: Port) -> bool:
        if not self._is_valid_destination(destination):
            return False
        if not self.mesh.has_port(source):
            return False
        if source == destination:
            return True
        if source.name is PortName.LOCAL:
            # Local in-ports can start a route to any destination; local
            # out-ports are sinks and reach nothing but themselves.
            return source.direction is Direction.IN
        if self.order == "xy":
            return self._reachable_xy(source, destination)
        return self._reachable_yx(source, destination)

    def _reachable_xy(self, source: Port, destination: Port) -> bool:
        """Which (port, destination) pairs occur under XY routing."""
        if source.direction is Direction.IN:
            if source.name is PortName.WEST:
                return destination.x >= source.x
            if source.name is PortName.EAST:
                return destination.x <= source.x
            if source.name is PortName.NORTH:
                return destination.x == source.x and destination.y >= source.y
            if source.name is PortName.SOUTH:
                return destination.x == source.x and destination.y <= source.y
        else:
            if source.name is PortName.EAST:
                return destination.x > source.x
            if source.name is PortName.WEST:
                return destination.x < source.x
            if source.name is PortName.SOUTH:
                return destination.x == source.x and destination.y > source.y
            if source.name is PortName.NORTH:
                return destination.x == source.x and destination.y < source.y
        return False

    def _reachable_yx(self, source: Port, destination: Port) -> bool:
        """Which (port, destination) pairs occur under YX routing."""
        if source.direction is Direction.IN:
            if source.name is PortName.NORTH:
                return destination.y >= source.y
            if source.name is PortName.SOUTH:
                return destination.y <= source.y
            if source.name is PortName.WEST:
                return destination.y == source.y and destination.x >= source.x
            if source.name is PortName.EAST:
                return destination.y == source.y and destination.x <= source.x
        else:
            if source.name is PortName.SOUTH:
                return destination.y > source.y
            if source.name is PortName.NORTH:
                return destination.y < source.y
            if source.name is PortName.EAST:
                return destination.y == source.y and destination.x > source.x
            if source.name is PortName.WEST:
                return destination.y == source.y and destination.x < source.x
        return False

    def _route_from_in_port(self, current: Port,
                            destination: Port) -> List[Port]:
        if self.order == "xy":
            name = self._xy_direction(current, destination)
        else:
            name = self._yx_direction(current, destination)
        return [self._out_port(current, name)]

    def _xy_direction(self, current: Port, destination: Port) -> PortName:
        """First reduce the x offset, then the y offset (paper's ``Rxy``)."""
        if destination.x < current.x:
            return PortName.WEST
        if destination.x > current.x:
            return PortName.EAST
        if destination.y < current.y:
            return PortName.NORTH
        if destination.y > current.y:
            return PortName.SOUTH
        return PortName.LOCAL  # same node: handled by the base class

    def _yx_direction(self, current: Port, destination: Port) -> PortName:
        """First reduce the y offset, then the x offset."""
        if destination.y < current.y:
            return PortName.NORTH
        if destination.y > current.y:
            return PortName.SOUTH
        if destination.x < current.x:
            return PortName.WEST
        if destination.x > current.x:
            return PortName.EAST
        return PortName.LOCAL
