"""Fault-aware routing: shortest surviving paths around dead links/routers.

The regular routing functions (XY, turn models, ring/torus dimension order)
assume every geometric neighbour exists; on a
:class:`~repro.network.faults.FaultyMesh2D` (or faulty torus/ring) they
would run into missing out-ports.  :class:`FaultAwareRouting` is the
table-based repair used by the ``faults=k`` scenario variants: per
destination node a BFS over the *surviving* links yields the node distance
map, and the next hops from an in-port are exactly the out-ports whose link
target is strictly closer to the destination -- so every hop makes
progress, routes terminate within the surviving diameter, and the relation
is total whenever the fabric is connected (which the fault sampler
guarantees).

The base algorithm's character is kept as a *preference*, not a guarantee:
a deterministic variant (fault-aware XY, YX, clockwise, ...) picks the
single shortest-path hop ranked by the algorithm's direction order, an
adaptive variant (fault-aware turn models, fully adaptive) keeps all
shortest-path hops that the algorithm's direction filter allows, falling
back to all shortest-path hops when the filter would strand the packet at
a detour.  This relaxation near faults can re-introduce forbidden turns --
whether the rerouted relation still satisfies the deadlock condition is
exactly the question the prover answers per sampled fault set.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.constituents import RoutingFunction
from repro.core.errors import RoutingError
from repro.network.port import Direction, Port, PortName
from repro.network.topology import Topology
from repro.routing.base import OccurringPairsReachability

Coordinate = Tuple[int, int]
#: Direction filter: ordered preferred directions for (current, destination),
#: or ``None`` for "no preference" (all shortest-path hops allowed).
DirectionFilter = Callable[[Port, Port], Optional[Sequence[PortName]]]

#: Default direction ranking (x moves first: the XY flavour).
XY_ORDER = (PortName.EAST, PortName.WEST, PortName.SOUTH, PortName.NORTH)
YX_ORDER = (PortName.SOUTH, PortName.NORTH, PortName.EAST, PortName.WEST)


class FaultAwareRouting(RoutingFunction):
    """Shortest-surviving-path routing over a (possibly faulty) topology."""

    def __init__(self, topology: Topology, token: str,
                 adaptive: bool = False,
                 preference: Sequence[PortName] = XY_ORDER,
                 direction_filter: Optional[DirectionFilter] = None) -> None:
        self._topology = topology
        self._token = token
        self._adaptive = bool(adaptive)
        self._preference = tuple(preference)
        self._filter = direction_filter
        # node -> ordered [(out_port, target_node)] over surviving links
        self._adjacency: Dict[Coordinate, List[Tuple[Port, Coordinate]]] = {
            node.coordinates: [] for node in topology.nodes}
        for out_port, in_port in sorted(topology.links.items()):
            if out_port.is_local:
                continue
            self._adjacency[out_port.node].append((out_port, in_port.node))
        self._distances: Dict[Coordinate, Dict[Coordinate, int]] = {}
        self._reachability = (OccurringPairsReachability(self)
                              if self._adaptive else None)

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def is_deterministic(self) -> bool:
        return not self._adaptive

    def name(self) -> str:
        return f"Rfa-{self._token}[{self._topology}]"

    # -- the routing relation -------------------------------------------------
    def next_hops(self, current: Port, destination: Port) -> List[Port]:
        self._check_destination(destination)
        if current == destination:
            return []
        if current.direction is Direction.OUT:
            if current.name is PortName.LOCAL:
                raise RoutingError(
                    f"cannot route from local out-port {current}: it is a "
                    f"network sink")
            target = self._topology.link_target(current)
            if target is None:
                raise RoutingError(f"out-port {current} has no link "
                                   f"(dead link not rerouted?)")
            return [target]
        if current.node == destination.node:
            return [Port(current.x, current.y, PortName.LOCAL, Direction.OUT)]
        return self._route_from_in_port(current, destination)

    def _route_from_in_port(self, current: Port,
                            destination: Port) -> List[Port]:
        distances = self._distances_to(destination.node)
        here = distances.get(current.node)
        if here is None:
            raise RoutingError(
                f"{destination} is unreachable from {current}: the fault "
                f"set disconnects them")
        candidates = [out for out, target in self._adjacency[current.node]
                      if distances.get(target) == here - 1]
        if not candidates:
            raise RoutingError(
                f"no shortest-path hop from {current} to {destination}")
        preferred = self._filter(current, destination) if self._filter \
            else None
        if self._adaptive:
            if preferred is not None:
                filtered = [out for out in candidates
                            if out.name in preferred]
                if filtered:
                    return filtered
            return candidates
        order = tuple(preferred) if preferred else self._preference
        ranked = sorted(
            candidates,
            key=lambda out: (order.index(out.name)
                             if out.name in order else len(order), out))
        return [ranked[0]]

    def _distances_to(self, destination: Coordinate) -> Dict[Coordinate, int]:
        cached = self._distances.get(destination)
        if cached is not None:
            return cached
        distances = {destination: 0}
        frontier = [destination]
        while frontier:
            next_frontier: List[Coordinate] = []
            for node in frontier:
                for _, neighbour in self._adjacency[node]:
                    if neighbour not in distances:
                        distances[neighbour] = distances[node] + 1
                        next_frontier.append(neighbour)
            frontier = next_frontier
        # Links are bidirectional at node level (validated), so the forward
        # BFS distance doubles as the distance *to* the destination.
        self._distances[destination] = distances
        return distances

    # -- reachability ---------------------------------------------------------
    def reachable(self, source: Port, destination: Port) -> bool:
        if not self._is_valid_destination(destination):
            return False
        if not self._topology.has_port(source):
            return False
        if source == destination:
            return True
        if source.name is PortName.LOCAL and source.direction is Direction.OUT:
            return False
        if self._reachability is not None:
            return self._reachability(source, destination)
        return source.node in self._distances_to(destination.node)

    def _is_valid_destination(self, destination: Port) -> bool:
        return (destination.name is PortName.LOCAL
                and destination.direction is Direction.OUT
                and self._topology.has_port(destination))

    def _check_destination(self, destination: Port) -> None:
        if not self._is_valid_destination(destination):
            raise RoutingError(
                f"{destination} is not a valid destination (destinations "
                f"are local out-ports of the topology)")


# ---------------------------------------------------------------------------
# Direction filters: the base algorithms' character as a preference
# ---------------------------------------------------------------------------

def _minimal_names(current: Port, destination: Port) -> List[PortName]:
    names: List[PortName] = []
    if destination.x < current.x:
        names.append(PortName.WEST)
    elif destination.x > current.x:
        names.append(PortName.EAST)
    if destination.y < current.y:
        names.append(PortName.NORTH)
    elif destination.y > current.y:
        names.append(PortName.SOUTH)
    return names


def _west_first_filter(current: Port, destination: Port
                       ) -> Optional[Sequence[PortName]]:
    minimal = _minimal_names(current, destination)
    if PortName.WEST in minimal:
        return [PortName.WEST]
    return minimal or None


def _north_last_filter(current: Port, destination: Port
                       ) -> Optional[Sequence[PortName]]:
    minimal = _minimal_names(current, destination)
    without_north = [name for name in minimal if name is not PortName.NORTH]
    return (without_north or minimal) or None


def _negative_first_filter(current: Port, destination: Port
                           ) -> Optional[Sequence[PortName]]:
    minimal = _minimal_names(current, destination)
    negative = [name for name in minimal
                if name in (PortName.WEST, PortName.NORTH)]
    return (negative or minimal) or None


def _odd_even_filter(current: Port, destination: Port
                     ) -> Optional[Sequence[PortName]]:
    from repro.routing.turn_model import odd_even_directions

    return odd_even_directions(current, destination) or None


def _zigzag_filter(current: Port, destination: Port
                   ) -> Optional[Sequence[PortName]]:
    if destination.x % 2 == 0:
        return XY_ORDER
    return YX_ORDER


#: token -> (adaptive?, preference order, direction filter)
_MESH_TOKEN_TABLE = {
    "xy": (False, XY_ORDER, None),
    "yx": (False, YX_ORDER, None),
    "west-first": (True, XY_ORDER, _west_first_filter),
    "north-last": (True, XY_ORDER, _north_last_filter),
    "negative-first": (True, XY_ORDER, _negative_first_filter),
    "odd-even": (True, XY_ORDER, _odd_even_filter),
    "adaptive": (True, XY_ORDER, None),
    "zigzag": (False, XY_ORDER, _zigzag_filter),
}


def fault_aware_mesh_routing(token: str,
                             topology: Topology) -> FaultAwareRouting:
    """The fault-aware variant of a mesh routing token over ``topology``."""
    try:
        adaptive, preference, direction_filter = _MESH_TOKEN_TABLE[token]
    except KeyError:
        raise RoutingError(
            f"no fault-aware variant for mesh routing token {token!r}; "
            f"known: {sorted(_MESH_TOKEN_TABLE)}") from None
    return FaultAwareRouting(topology, token, adaptive=adaptive,
                             preference=preference,
                             direction_filter=direction_filter)


def fault_aware_ring_routing(token: str,
                             topology: Topology) -> FaultAwareRouting:
    """The fault-aware variant of a ring routing token over ``topology``.

    Both ring tokens relax to shortest surviving paths; ``clockwise``
    prefers East where shortest paths tie, ``chain`` prefers West (so the
    two stay distinguishable relations on a faulty ring).
    """
    if token == "clockwise":
        order = (PortName.EAST, PortName.WEST)
    elif token == "chain":
        order = (PortName.WEST, PortName.EAST)
    else:
        raise RoutingError(
            f"no fault-aware variant for ring routing token {token!r}")
    return FaultAwareRouting(topology, token, adaptive=False,
                             preference=order)


def fault_aware_escape_routing(topology: Topology, num_vcs: int,
                               route_policy: str = "escape",
                               style: str = "xy",
                               with_adaptive: bool = True):
    """A Duato escape relation whose classes route around the faults.

    The escape class is the deterministic fault-aware shortest-path routing
    (XY-flavoured ranking); the adaptive class (when present) is the
    fault-aware all-shortest-hops relation.  ``style`` selects the escape
    VC budget exactly like the healthy builders: ``"xy"`` reserves one
    escape VC, ``"dateline"`` a pair (collapsing to one at ``num_vcs=1``);
    the dateline bump still triggers on surviving wrap links.
    """
    from repro.network.vc import VCTopology
    from repro.routing.escape import EscapeChannelRouting

    vct = VCTopology(topology, num_vcs)
    escape = FaultAwareRouting(topology, "escape", adaptive=False,
                               preference=XY_ORDER)
    adaptive: Optional[FaultAwareRouting] = None
    if with_adaptive:
        adaptive = FaultAwareRouting(topology, "adaptive", adaptive=True)
    if style == "dateline":
        escape_vc_count = 1 if num_vcs == 1 else 2
    else:
        escape_vc_count = 1
    return EscapeChannelRouting(
        vct,
        escape_routing=escape,
        adaptive_routing=adaptive,
        escape_vc_count=escape_vc_count,
        route_policy=route_policy,
        style=style)
