"""Shared machinery of the mesh routing functions.

All mesh routing functions in this library are defined at the *port* level,
like the paper's ``Rxy`` (Section V.3):

* applied to an **out-port**, the next hop is the in-port it is physically
  connected to (``next_in``);
* applied to an **in-port** of the destination node, the next hop is the
  local out-port (delivery);
* applied to any other in-port, the next hop is one (or, for adaptive
  functions, several) of the node's out-ports chosen by the concrete
  algorithm.

The helper :func:`occurring_pairs` computes which (port, destination) pairs
can actually occur on routes that start at local in-ports; it is used as the
``s R d`` reachability predicate for the partially adaptive routing
functions, whose port-level definition is only meaningful on occurring
pairs.
"""

from __future__ import annotations

import abc
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.constituents import RoutingFunction
from repro.core.errors import RoutingError
from repro.network.mesh import Mesh2D
from repro.network.port import Direction, Port, PortName, next_in, trans
from repro.network.topology import Topology


class MeshRoutingFunction(RoutingFunction):
    """Base class of port-level routing functions over a 2D mesh."""

    def __init__(self, mesh: Mesh2D) -> None:
        self._mesh = mesh

    @property
    def topology(self) -> Mesh2D:
        return self._mesh

    @property
    def mesh(self) -> Mesh2D:
        return self._mesh

    # -- the out-port and delivery cases shared by every algorithm -----------------
    def next_hops(self, current: Port, destination: Port) -> List[Port]:
        self._check_destination(destination)
        if current == destination:
            return []
        if current.direction is Direction.OUT:
            if current.name is PortName.LOCAL:
                raise RoutingError(
                    f"cannot route from local out-port {current}: it is a "
                    f"network sink")
            return [next_in(current)]
        if current.node == destination.node:
            return [trans(current, PortName.LOCAL, Direction.OUT)]
        return self._route_from_in_port(current, destination)

    @abc.abstractmethod
    def _route_from_in_port(self, current: Port,
                            destination: Port) -> List[Port]:
        """The algorithm-specific case: an in-port of a non-destination node."""

    # -- reachability ------------------------------------------------------------------
    def reachable(self, source: Port, destination: Port) -> bool:
        """Default ``s R d``: any port except foreign local out-ports.

        Deterministic minimal routing reaches any local out-port from any
        port of the mesh, so the only exclusions are destinations that are
        not local out-ports and sources that are themselves network sinks.
        """
        if not self._is_valid_destination(destination):
            return False
        if not self._mesh.has_port(source):
            return False
        if source == destination:
            return True
        if source.name is PortName.LOCAL and source.direction is Direction.OUT:
            return False
        return True

    def _is_valid_destination(self, destination: Port) -> bool:
        return (destination.name is PortName.LOCAL
                and destination.direction is Direction.OUT
                and self._mesh.has_port(destination))

    def _check_destination(self, destination: Port) -> None:
        if not self._is_valid_destination(destination):
            raise RoutingError(
                f"{destination} is not a valid destination (destinations are "
                f"local out-ports of the mesh)")

    # -- helpers for the concrete algorithms ----------------------------------------------
    def _minimal_directions(self, current: Port,
                            destination: Port) -> List[PortName]:
        """Cardinal directions that reduce the distance to the destination."""
        directions: List[PortName] = []
        if destination.x < current.x:
            directions.append(PortName.WEST)
        elif destination.x > current.x:
            directions.append(PortName.EAST)
        if destination.y < current.y:
            directions.append(PortName.NORTH)
        elif destination.y > current.y:
            directions.append(PortName.SOUTH)
        return directions

    def _out_port(self, current: Port, name: PortName) -> Port:
        port = trans(current, name, Direction.OUT)
        if not self._mesh.has_port(port):
            raise RoutingError(
                f"routing wants out-port {port}, which does not exist "
                f"(node at the mesh boundary)")
        return port


def occurring_pairs(routing: RoutingFunction,
                    ) -> FrozenSet[Tuple[Port, Port]]:
    """All (port, destination) pairs that occur on routes from local in-ports.

    For every local in-port ``s`` and every destination ``d``, follow every
    adaptive branch of the routing function and collect the (visited port,
    ``d``) pairs.  The result is the natural ``s R d`` predicate for
    partially adaptive routing functions whose port-level definition is only
    exercised on ports a packet can actually be at.
    """
    topology = routing.topology
    pairs: Set[Tuple[Port, Port]] = set()
    for destination in routing.destinations():
        frontier: List[Port] = []
        for source in topology.local_in_ports():
            frontier.append(source)
        seen: Set[Port] = set()
        while frontier:
            port = frontier.pop()
            if port in seen:
                continue
            seen.add(port)
            pairs.add((port, destination))
            if port == destination:
                continue
            for successor in routing.next_hops(port, destination):
                if successor not in seen:
                    frontier.append(successor)
    return frozenset(pairs)


class OccurringPairsReachability:
    """A ``reachable`` predicate backed by :func:`occurring_pairs` (cached)."""

    def __init__(self, routing: RoutingFunction) -> None:
        self._routing = routing
        self._pairs: Optional[FrozenSet[Tuple[Port, Port]]] = None

    def __call__(self, source: Port, destination: Port) -> bool:
        if self._pairs is None:
            self._pairs = occurring_pairs(self._routing)
        if source == destination:
            return True
        return (source, destination) in self._pairs
