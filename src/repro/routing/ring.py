"""Ring routing functions.

Rings are the textbook example for the deadlock condition: routing that uses
the wrap-around link closes a cycle of channel dependencies, while routing
that never wraps (treating the ring as a chain) is deadlock-free.  Three
functions are provided:

* :class:`ClockwiseRingRouting` -- always travel East (clockwise), using the
  wrap-around link; the dependency graph is a single big cycle.
* :class:`ShortestPathRingRouting` -- travel in whichever direction is
  shorter; the wrap-around links are still used, so cycles remain.
* :class:`ChainRingRouting` -- never use the wrap-around link (route as if
  the ring were a linear chain); deadlock-free, used by the second
  instantiation of :mod:`repro.ringnoc`.
"""

from __future__ import annotations

from typing import List

from repro.core.constituents import RoutingFunction
from repro.core.errors import RoutingError
from repro.network.port import Direction, Port, PortName, next_in, trans
from repro.network.ring import Ring
from repro.network.topology import Topology


class _RingRoutingBase(RoutingFunction):
    """Shared port-level scaffolding of the ring routing functions."""

    def __init__(self, ring: Ring) -> None:
        self._ring = ring

    @property
    def topology(self) -> Ring:
        return self._ring

    @property
    def ring(self) -> Ring:
        return self._ring

    def reachable(self, source: Port, destination: Port) -> bool:
        if not self._is_valid_destination(destination):
            return False
        if not self._ring.has_port(source):
            return False
        if source == destination:
            return True
        if source.name is PortName.LOCAL and source.direction is Direction.OUT:
            return False
        return True

    def _is_valid_destination(self, destination: Port) -> bool:
        return (destination.name is PortName.LOCAL
                and destination.direction is Direction.OUT
                and self._ring.has_port(destination))

    def next_hops(self, current: Port, destination: Port) -> List[Port]:
        if not self._is_valid_destination(destination):
            raise RoutingError(f"{destination} is not a ring destination")
        if current == destination:
            return []
        if current.direction is Direction.OUT:
            if current.name is PortName.LOCAL:
                raise RoutingError(
                    f"cannot route from local out-port {current}")
            target = self._ring.link_target(current)
            if target is None:
                raise RoutingError(f"out-port {current} has no link")
            return [target]
        if current.x == destination.x:
            return [trans(current, PortName.LOCAL, Direction.OUT)]
        return [self._choose_out_port(current, destination)]

    def _choose_out_port(self, current: Port, destination: Port) -> Port:
        raise NotImplementedError


class ClockwiseRingRouting(_RingRoutingBase):
    """Always route East (clockwise); uses the wrap-around link."""

    def name(self) -> str:
        return "Rclockwise"

    def _choose_out_port(self, current: Port, destination: Port) -> Port:
        return trans(current, PortName.EAST, Direction.OUT)


class ShortestPathRingRouting(_RingRoutingBase):
    """Route in the direction of the shorter arc (ties go clockwise)."""

    def name(self) -> str:
        return "Rshortest-ring"

    def _choose_out_port(self, current: Port, destination: Port) -> Port:
        clockwise = self._ring.clockwise_distance(current.x, destination.x)
        counter = self._ring.size - clockwise
        if clockwise <= counter or not self._ring.bidirectional:
            return trans(current, PortName.EAST, Direction.OUT)
        return trans(current, PortName.WEST, Direction.OUT)


class ChainRingRouting(_RingRoutingBase):
    """Never use the wrap-around link: route as on a linear chain.

    Requires a bidirectional ring.  East is taken when the destination index
    is larger, West when it is smaller -- exactly the deterministic
    1-dimensional dimension-order routing, which is deadlock-free.
    """

    def __init__(self, ring: Ring) -> None:
        super().__init__(ring)
        if not ring.bidirectional:
            raise ValueError("chain routing needs a bidirectional ring")

    def name(self) -> str:
        return "Rchain"

    def reachable(self, source: Port, destination: Port) -> bool:
        """The ``s R d`` predicate of chain routing.

        A packet travelling East (at a West in-port or East out-port) can
        only be destined to nodes further East, and symmetrically for
        westbound traffic; local in-ports can start a route to any
        destination.
        """
        if not super().reachable(source, destination):
            return False
        if source == destination or source.name is PortName.LOCAL:
            return True
        if source.name is PortName.WEST and source.direction is Direction.IN:
            return destination.x >= source.x
        if source.name is PortName.EAST and source.direction is Direction.OUT:
            return destination.x > source.x
        if source.name is PortName.EAST and source.direction is Direction.IN:
            return destination.x <= source.x
        if source.name is PortName.WEST and source.direction is Direction.OUT:
            return destination.x < source.x
        return True

    def _choose_out_port(self, current: Port, destination: Port) -> Port:
        if destination.x > current.x:
            return trans(current, PortName.EAST, Direction.OUT)
        return trans(current, PortName.WEST, Direction.OUT)
