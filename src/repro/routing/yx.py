"""YX routing: dimension-order routing with the y-axis first.

The mirror image of the paper's XY routing; it is also deadlock-free (its
dependency graph is acyclic, with the roles of the horizontal and vertical
flows of Fig. 4 swapped) and serves as a second deterministic positive
example for the obligation checkers.
"""

from __future__ import annotations

from repro.network.mesh import Mesh2D
from repro.routing.dimension_order import DimensionOrderRouting


class YXRouting(DimensionOrderRouting):
    """``Ryx``: deterministic, minimal YX routing over a 2D mesh."""

    def __init__(self, mesh: Mesh2D) -> None:
        super().__init__(mesh, order="yx")

    def name(self) -> str:
        return "Ryx"
