"""Routing-function library.

The paper's instantiation uses XY routing on a 2D mesh; this package adds
the classical alternatives used by the benchmarks and ablations:

* :class:`XYRouting`, :class:`YXRouting` -- deterministic dimension-order
  routing (the paper's ``Rxy`` is :class:`XYRouting`).
* :class:`WestFirstRouting`, :class:`NorthLastRouting`,
  :class:`NegativeFirstRouting` -- partially adaptive turn-model routing
  (the "adaptive routing" direction of the paper's future work).
* :class:`FullyAdaptiveMinimalRouting` -- unrestricted minimal adaptive
  routing: the deliberately deadlock-prone negative baseline whose
  dependency graph contains cycles.
* :class:`ClockwiseRingRouting`, :class:`ShortestPathRingRouting`,
  :class:`ChainRingRouting` -- ring routings; the first two have cyclic
  dependency graphs (the textbook ring deadlock), the third never uses the
  wrap-around link and is deadlock-free.
"""

from repro.routing.base import MeshRoutingFunction, occurring_pairs
from repro.routing.dimension_order import DimensionOrderRouting
from repro.routing.xy import XYRouting
from repro.routing.yx import YXRouting
from repro.routing.turn_model import (
    NegativeFirstRouting,
    NorthLastRouting,
    WestFirstRouting,
)
from repro.routing.adaptive import FullyAdaptiveMinimalRouting
from repro.routing.ring import (
    ChainRingRouting,
    ClockwiseRingRouting,
    ShortestPathRingRouting,
)
from repro.routing.torus import TorusAdaptiveMinimalRouting, TorusXYRouting
from repro.routing.escape import (
    EscapeChannelRouting,
    mesh_escape_routing,
    ring_escape_routing,
    torus_escape_routing,
)

__all__ = [
    "MeshRoutingFunction",
    "occurring_pairs",
    "DimensionOrderRouting",
    "XYRouting",
    "YXRouting",
    "WestFirstRouting",
    "NorthLastRouting",
    "NegativeFirstRouting",
    "FullyAdaptiveMinimalRouting",
    "ChainRingRouting",
    "ClockwiseRingRouting",
    "ShortestPathRingRouting",
    "TorusAdaptiveMinimalRouting",
    "TorusXYRouting",
    "EscapeChannelRouting",
    "mesh_escape_routing",
    "ring_escape_routing",
    "torus_escape_routing",
]
